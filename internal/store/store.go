// Package store is the study's durable visit log: an embedded,
// stdlib-only, append-only record store that makes a crashed crawl a
// resumable one instead of a total loss. The crawler streams every
// completed visit (its page outcome, request records, and stats) into
// the store as one keyed entry; on restart the log replays, a torn
// tail from a mid-write crash is truncated, and the study re-enters
// the pipeline with only the missing visits. The run manifest then
// proves the resumed run equal to an uninterrupted one (see the
// crashsafety gate in the Makefile).
//
// On disk a store is a directory of segment files plus a checkpoint:
//
//	seg-000001.wal   append-only segments: a fingerprint header, then
//	                 length-prefixed, CRC-checksummed key/value records
//	checkpoint.json  entry count, content digest, and per-segment
//	                 durable sizes, rewritten atomically on Checkpoint
//
// Writes are buffered and fsync'd in batches (Options.SyncEvery); an
// entry is durable once its batch has synced. Replay trusts nothing:
// every record re-verifies its CRC, and the first incomplete or
// corrupt record in the final segment marks the torn tail — replay
// truncates there and appending continues from the last valid byte.
// Corruption anywhere earlier is a typed error (ErrCorrupt), never a
// panic and never phantom records.
//
// The store is keyed by (stage, corpus, vantage, site) so one study
// writes all its crawl stages into a single log and each stage reads
// back exactly its own visits with a prefix scan. A fingerprint
// header (the PR 4 config fingerprint plus the generation seed) binds
// a store directory to one study configuration: resuming with a
// different config refuses to run rather than silently mixing runs.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/provenance"
)

// keySep separates key fields in their encoded form. Stages, corpora,
// vantages and hostnames never contain an ASCII unit separator.
const keySep = "\x1f"

// Key identifies one durable visit entry.
type Key struct {
	Stage   string // pipeline stage name, e.g. "crawl/porn-ES"
	Corpus  string // corpus being crawled: "porn", "reference"
	Vantage string // vantage country code
	Site    string // visited site host
}

// Encode renders the key as a single string with field separators.
func (k Key) Encode() string {
	return k.Stage + keySep + k.Corpus + keySep + k.Vantage + keySep + k.Site
}

// DecodeKey parses an encoded key; it fails on a wrong field count.
func DecodeKey(s string) (Key, error) {
	parts := strings.Split(s, keySep)
	if len(parts) != 4 {
		return Key{}, fmt.Errorf("store: malformed key %q: %w", s, ErrCorrupt)
	}
	return Key{Stage: parts[0], Corpus: parts[1], Vantage: parts[2], Site: parts[3]}, nil
}

// StagePrefix returns the scan prefix selecting every entry of one
// pipeline stage.
func StagePrefix(stage string) string { return stage + keySep }

// Store is the interface the study layers program against: append
// visits as they complete, read them back by key or stage prefix, and
// make the log durable on demand.
type Store interface {
	// Append adds one entry. The write is buffered; it becomes durable
	// with the next batch sync (every Options.SyncEvery appends, on
	// Sync/Checkpoint, and on Close).
	Append(k Key, value []byte) error
	// Get reads one entry's value back from disk.
	Get(k Key) ([]byte, bool, error)
	// Has reports whether an entry is already durable in the log.
	Has(k Key) bool
	// Scan streams every entry whose encoded key starts with prefix, in
	// sorted key order, reading values back from disk one at a time.
	Scan(prefix string, fn func(k Key, value []byte) error) error
	// Len returns the number of live entries.
	Len() int
	// Digest returns the entry count and the order-independent content
	// digest over all entries — the value the run manifest records.
	Digest() (int, string)
	// Sync flushes buffered appends and fsyncs the active segment.
	Sync() error
	// Checkpoint syncs and atomically rewrites checkpoint.json.
	Checkpoint() error
	// Close checkpoints and releases every file handle.
	Close() error
}

// Typed errors. Callers branch on these with errors.Is.
var (
	// ErrFingerprintMismatch: the directory belongs to a different study
	// configuration (config fingerprint or seed differs).
	ErrFingerprintMismatch = errors.New("store: config fingerprint mismatch")
	// ErrCorrupt: a segment is damaged somewhere other than the torn
	// tail of the final segment.
	ErrCorrupt = errors.New("store: corrupt segment")
	// ErrExists: Open without Resume found a non-empty store directory.
	ErrExists = errors.New("store: directory already holds a store")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("store: closed")
	// ErrKilled: the crash-injection kill switch fired.
	ErrKilled = errors.New("store: killed by crash injection")
)

// KillSwitch injects a crash at a seeded append for crash-safety
// testing: the Nth append stops mid-write, leaving the log exactly as
// a power cut would. With Exit set (cmd/pornstudy -kill-after-appends)
// the process genuinely dies; with Exit nil the store is poisoned
// instead — the append returns ErrKilled and every later write fails —
// so in-process tests can kill and resume without forking.
type KillSwitch struct {
	// After fires the kill on the After-th append (1-based).
	After int
	// Torn writes a partial record (header plus half the payload) and
	// syncs it before dying, planting the torn tail replay must truncate.
	// Without Torn the kill lands on a clean record boundary.
	Torn bool
	// Exit, when non-nil, is called with status 137 after the torn bytes
	// hit disk. os.Exit makes it a real process kill.
	Exit func(code int)
}

// Options configures Open.
type Options struct {
	// Fingerprint is the study's config fingerprint (16 hex digits from
	// provenance.HashJSON); it is stamped into every segment header and
	// verified on resume. Required.
	Fingerprint string
	// Seed is the generation seed, stored alongside the fingerprint.
	Seed int64
	// Resume opens an existing store (verifying its fingerprint) instead
	// of requiring an empty directory.
	Resume bool
	// SyncEvery batches fsyncs: the active segment is synced after every
	// SyncEvery appends (default 16; 1 syncs every append).
	SyncEvery int
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, receives append/sync/replay telemetry.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a store/replay span around Open's
	// replay pass.
	Tracer *obs.Tracer
	// Kill is the crash-injection switch (nil in production).
	Kill *KillSwitch
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// entryLoc addresses one entry's value bytes inside a segment.
type entryLoc struct {
	seg  int   // index into Log.segments
	off  int64 // offset of the value bytes
	size int   // value length
}

// Log is the file-backed Store implementation.
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex
	// guarded by mu
	segments []*segment
	// index maps encoded key -> location.
	// guarded by mu
	index map[string]entryLoc
	// keys caches the sorted encoded keys; rebuilt lazily.
	// guarded by mu
	keys []string
	// guarded by mu
	keysDirty bool
	// guarded by mu
	digest provenance.MultisetHash
	// unsynced counts appends since the last fsync.
	// guarded by mu
	unsynced int
	// appends counts total appends this process (kill-switch clock).
	// guarded by mu
	appends int
	// guarded by mu
	closed bool
	// poisoned is non-nil once a kill or write failure wedges the log.
	// guarded by mu
	poisoned error

	met storeMetrics
}

// storeMetrics holds the store's pre-resolved instruments; all nil
// (no-op) without a registry.
type storeMetrics struct {
	appendN     *obs.Counter
	appendBytes *obs.Counter
	syncN       *obs.Counter
	syncSec     *obs.Histogram
	replayN     *obs.Counter
	truncated   *obs.Counter
	writeErrs   *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	reg.Describe("store_append_total", "visit entries appended to the durable log")
	reg.Describe("store_append_bytes_total", "payload bytes appended to the durable log")
	reg.Describe("store_sync_total", "batched fsyncs of the active segment")
	reg.Describe("store_sync_seconds", "duration of one flush+fsync batch")
	reg.Describe("store_replay_records_total", "entries recovered by replay at open")
	reg.Describe("store_replay_truncated_total", "torn tails truncated by replay")
	reg.Describe("store_write_errors_total", "appends or syncs that failed")
	return storeMetrics{
		appendN:     reg.Counter("store_append_total"),
		appendBytes: reg.Counter("store_append_bytes_total"),
		syncN:       reg.Counter("store_sync_total"),
		syncSec:     reg.Histogram("store_sync_seconds", obs.LatencyBuckets),
		replayN:     reg.Counter("store_replay_records_total"),
		truncated:   reg.Counter("store_replay_truncated_total"),
		writeErrs:   reg.Counter("store_write_errors_total"),
	}
}

// Open creates or resumes the store in dir. A fresh open requires the
// directory to be empty of store files unless opts.Resume is set; a
// resume verifies the stored fingerprint and seed against opts,
// replays every segment (re-verifying CRCs), truncates a torn tail in
// the final segment, and leaves the log ready to append.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Fingerprint == "" {
		return nil, fmt.Errorf("store: open %s: fingerprint required", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:   dir,
		opts:  opts,
		index: map[string]entryLoc{},
		met:   newStoreMetrics(opts.Metrics),
	}
	if len(names) > 0 && !opts.Resume {
		return nil, fmt.Errorf("store: open %s: %w (resume it or remove the directory)", dir, ErrExists)
	}
	if len(names) == 0 {
		if err := l.rotate(); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Resume: verify the checkpoint first (cheap, catches the mismatch
	// before any segment I/O), then replay every segment.
	if cp, err := readCheckpoint(dir); err == nil && cp != nil {
		if cp.Fingerprint != opts.Fingerprint || cp.Seed != opts.Seed {
			return nil, fmt.Errorf("store: %s holds fingerprint %s seed %d, want %s seed %d: %w",
				dir, cp.Fingerprint, cp.Seed, opts.Fingerprint, opts.Seed, ErrFingerprintMismatch)
		}
	}
	if err := l.replayAll(names); err != nil {
		l.closeFiles()
		return nil, err
	}
	return l, nil
}

// replayAll loads every named segment in order, rebuilding the index
// and digest, truncating a torn tail in the final segment.
// guarded by mu
func (l *Log) replayAll(names []string) error {
	var span *obs.Span
	if l.opts.Tracer != nil {
		_, span = l.opts.Tracer.Start(context.Background(), "store/replay")
		defer span.End()
	}
	entries := 0
	for i, name := range names {
		seg, err := openSegment(filepath.Join(l.dir, name), l.opts)
		if err != nil {
			return err
		}
		last := i == len(names)-1
		n, truncated, err := seg.replay(last, func(key string, loc valueLoc) {
			//studylint:ignore locksafe seg.replay invokes this callback synchronously on replayAll's own stack, so the caller-held mu is still held; the closure never escapes
			l.indexPut(key, entryLoc{seg: i, off: loc.off, size: loc.size}, loc.payload)
		})
		if err != nil {
			seg.close()
			return err
		}
		entries += n
		if truncated {
			l.met.truncated.Inc()
		}
		l.segments = append(l.segments, seg)
	}
	l.met.replayN.Add(uint64(entries))
	if span != nil {
		span.SetAttr("entries", fmt.Sprint(entries))
		span.SetAttr("segments", fmt.Sprint(len(names)))
	}
	return nil
}

// indexPut records one live entry. A re-appended key replaces the old
// location; the digest removes the superseded payload so it stays a
// digest of the live entry set.
// guarded by mu
func (l *Log) indexPut(key string, loc entryLoc, payload string) {
	if _, exists := l.index[key]; exists {
		// Duplicate keys cannot happen in normal operation (a visit is
		// appended once), but replay tolerates them: last write wins and
		// the digest counts each live entry once... MultisetHash has no
		// removal, so rebuild marks the digest dirty instead.
		l.rebuildDigestExcluding(key, payload)
	} else {
		l.digest.Add(payload)
	}
	l.index[key] = loc
	l.keysDirty = true
}

// rebuildDigestExcluding recomputes the digest with key's payload
// replaced by the new one. Slow path; only duplicate keys reach it.
// guarded by mu
func (l *Log) rebuildDigestExcluding(key, newPayload string) {
	// The multiset sum is wrapping addition, so replacing one element is
	// subtract-old, add-new. We do not retain old payloads, so re-read it.
	old, ok, err := l.getLocked(key)
	if err != nil || !ok {
		l.digest.Add(newPayload)
		return
	}
	k, _ := DecodeKey(key)
	l.digest.Remove(k.Encode() + keySep + string(old))
	l.digest.Add(newPayload)
}

// Append implements Store.
func (l *Log) Append(k Key, value []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	l.appends++
	if ks := l.opts.Kill; ks != nil && l.appends == ks.After {
		return l.fireKill(k, value)
	}
	seg := l.active()
	loc, payload, err := seg.append(k.Encode(), value)
	if err != nil {
		l.met.writeErrs.Inc()
		l.poisoned = err
		return err
	}
	l.indexPut(k.Encode(), entryLoc{seg: len(l.segments) - 1, off: loc.off, size: loc.size}, payload)
	l.met.appendN.Inc()
	l.met.appendBytes.Add(uint64(len(payload)))
	l.unsynced++
	if l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if seg.size >= l.opts.SegmentBytes {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// fireKill plants the configured crash: optionally a synced torn
// record, then either process death or a poisoned log.
// guarded by mu
func (l *Log) fireKill(k Key, value []byte) error {
	ks := l.opts.Kill
	seg := l.active()
	// Everything durable so far stays durable, exactly like a real crash
	// after the last completed batch sync.
	_ = seg.flushAndSync()
	if ks.Torn {
		seg.writeTorn(k.Encode(), value)
	}
	l.poisoned = ErrKilled
	if ks.Exit != nil {
		ks.Exit(137)
	}
	return ErrKilled
}

// active returns the segment appends go to.
// guarded by mu
func (l *Log) active() *segment { return l.segments[len(l.segments)-1] }

// rotate seals the active segment and opens a fresh one.
// guarded by mu
func (l *Log) rotate() error {
	name := fmt.Sprintf("seg-%06d.wal", len(l.segments)+1)
	seg, err := createSegment(filepath.Join(l.dir, name), l.opts)
	if err != nil {
		return err
	}
	l.segments = append(l.segments, seg)
	return nil
}

// Get implements Store.
func (l *Log) Get(k Key) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, false, ErrClosed
	}
	v, ok, err := l.getLocked(k.Encode())
	return v, ok, err
}

// getLocked reads one entry by encoded key.
// guarded by mu
func (l *Log) getLocked(key string) ([]byte, bool, error) {
	loc, ok := l.index[key]
	if !ok {
		return nil, false, nil
	}
	seg := l.segments[loc.seg]
	// Reads go through the OS page cache; flush first so an un-synced
	// buffered append is visible to its own reader.
	if err := seg.flush(); err != nil {
		return nil, false, err
	}
	val, err := seg.readValue(loc.off, loc.size)
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Has implements Store.
func (l *Log) Has(k Key) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[k.Encode()]
	return ok
}

// sortedKeys returns the encoded keys in sorted order, rebuilding the
// cache only after appends changed the key set.
// guarded by mu
func (l *Log) sortedKeys() []string {
	if l.keysDirty {
		l.keys = l.keys[:0]
		for k := range l.index {
			l.keys = append(l.keys, k)
		}
		sort.Strings(l.keys)
		l.keysDirty = false
	}
	return l.keys
}

// Scan implements Store. fn sees entries in sorted key order; a fn
// error aborts the scan and is returned.
func (l *Log) Scan(prefix string, fn func(k Key, value []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keys := l.sortedKeys()
	start := sort.SearchStrings(keys, prefix)
	for _, key := range keys[start:] {
		if !strings.HasPrefix(key, prefix) {
			break
		}
		k, err := DecodeKey(key)
		if err != nil {
			return err
		}
		val, ok, err := l.getLocked(key)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(k, val); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Store.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Digest implements Store.
func (l *Log) Digest() (int, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.digest.Count(), l.digest.Sum()
}

// Sync implements Store.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	return l.syncLocked()
}

// syncLocked flushes and fsyncs the active segment.
// guarded by mu
func (l *Log) syncLocked() error {
	seg := l.active()
	start := time.Now()
	err := seg.flushAndSync()
	l.met.syncSec.Observe(time.Since(start).Seconds())
	if err != nil {
		l.met.writeErrs.Inc()
		l.poisoned = err
		return err
	}
	l.met.syncN.Inc()
	l.unsynced = 0
	return nil
}

// Checkpoint implements Store.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	return l.writeCheckpointLocked()
}

// Close implements Store. Closing a poisoned (killed) log releases
// file handles without checkpointing — the on-disk state must stay
// exactly as the crash left it.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.poisoned == nil {
		if serr := l.syncLocked(); serr != nil {
			err = serr
		} else if cerr := l.writeCheckpointLocked(); cerr != nil {
			err = cerr
		}
	}
	l.closeFiles()
	return err
}

// closeFiles releases every segment handle.
// guarded by mu
func (l *Log) closeFiles() {
	for _, seg := range l.segments {
		seg.close()
	}
}

// segmentNames lists seg-*.wal files in dir, sorted (their zero-padded
// numbering makes lexical order creation order).
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
