package store

import (
	"fmt"
	"testing"
)

// benchValue approximates one serialized VisitEntry at study scale
// (page HTML + records); 4 KiB keeps the benchmark honest about
// framing and CRC cost without turning it into a pure disk test.
var benchValue = make([]byte, 4096)

// BenchmarkStoreAppend measures append throughput with the default
// batched-fsync cadence — the cost the crawler pays per visit.
func BenchmarkStoreAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Fingerprint: "00ddba11fee1dead", Seed: 2019})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchValue)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key{Stage: "crawl/porn-ES", Corpus: "porn", Vantage: "ES",
			Site: fmt.Sprintf("site-%08d.example", i)}
		if err := l.Append(key, benchValue); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReplay measures replay rate: how fast a resumed run
// re-indexes an existing log. The log is built once per benchmark run.
func BenchmarkStoreReplay(b *testing.B) {
	const entries = 512
	dir := b.TempDir()
	opts := Options{Fingerprint: "00ddba11fee1dead", Seed: 2019}
	l, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		key := Key{Stage: "crawl/porn-ES", Corpus: "porn", Vantage: "ES",
			Site: fmt.Sprintf("site-%08d.example", i)}
		if err := l.Append(key, benchValue); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	ropts := opts
	ropts.Resume = true
	b.SetBytes(int64(entries * len(benchValue)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, ropts)
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != entries {
			b.Fatalf("replayed %d, want %d", r.Len(), entries)
		}
		b.StopTimer()
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
