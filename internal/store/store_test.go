package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pornweb/internal/obs"
)

const testFP = "00ddba11fee1dead"

func testOpts() Options {
	return Options{Fingerprint: testFP, Seed: 2019, SyncEvery: 4}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return l
}

func k(stage, site string) Key {
	return Key{Stage: stage, Corpus: "porn", Vantage: "ES", Site: site}
}

func TestKeyRoundTrip(t *testing.T) {
	in := Key{Stage: "crawl/porn-ES", Corpus: "porn", Vantage: "ES", Site: "tube0001.example"}
	out, err := DecodeKey(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := DecodeKey("no-separators"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("malformed key error = %v, want ErrCorrupt", err)
	}
}

func TestAppendGetScan(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	defer l.Close()

	sites := []string{"c.example", "a.example", "b.example"}
	for i, site := range sites {
		if err := l.Append(k("crawl/porn-ES", site), []byte(fmt.Sprintf("visit-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(k("crawl/geo-US", "a.example"), []byte("geo")); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if !l.Has(k("crawl/porn-ES", "a.example")) {
		t.Error("Has missed a stored key")
	}
	if l.Has(k("crawl/porn-ES", "zzz.example")) {
		t.Error("Has reported a phantom key")
	}
	val, ok, err := l.Get(k("crawl/porn-ES", "b.example"))
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(val) != "visit-2" {
		t.Fatalf("Get = %q, want visit-2", val)
	}

	// Scan is prefix-bounded and sorted.
	var scanned []string
	err = l.Scan(StagePrefix("crawl/porn-ES"), func(key Key, val []byte) error {
		scanned = append(scanned, key.Site+"="+string(val))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.example=visit-1", "b.example=visit-2", "c.example=visit-0"}
	if len(scanned) != len(want) {
		t.Fatalf("scan = %v, want %v", scanned, want)
	}
	for i := range want {
		if scanned[i] != want[i] {
			t.Fatalf("scan = %v, want %v", scanned, want)
		}
	}
}

func TestResumeReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	for i := 0; i < 37; i++ {
		site := fmt.Sprintf("site-%03d.example", i)
		if err := l.Append(k("crawl/porn-ES", site), bytes.Repeat([]byte{byte(i)}, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	_, wantDigest := l.Digest()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	opts := testOpts()
	opts.Resume = true
	r := mustOpen(t, dir, opts)
	defer r.Close()
	if got := r.Len(); got != 37 {
		t.Fatalf("replayed %d entries, want 37", got)
	}
	n, digest := r.Digest()
	if n != 37 || digest != wantDigest {
		t.Fatalf("replayed digest (%d, %s), want (37, %s)", n, digest, wantDigest)
	}
	val, ok, err := r.Get(k("crawl/porn-ES", "site-017.example"))
	if err != nil || !ok {
		t.Fatalf("Get after replay: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(val, bytes.Repeat([]byte{17}, 117)) {
		t.Fatal("replayed value differs from written value")
	}
	// And the store stays appendable.
	if err := r.Append(k("crawl/porn-ES", "late.example"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRefusesExistingWithoutResume(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	if err := l.Append(k("s", "a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); !errors.Is(err, ErrExists) {
		t.Fatalf("open over existing store = %v, want ErrExists", err)
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	if err := l.Append(k("s", "a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	other := testOpts()
	other.Resume = true
	other.Fingerprint = "feedfacecafebeef"
	if _, err := Open(dir, other); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mismatched fingerprint = %v, want ErrFingerprintMismatch", err)
	}
	seed := testOpts()
	seed.Resume = true
	seed.Seed = 7
	if _, err := Open(dir, seed); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mismatched seed = %v, want ErrFingerprintMismatch", err)
	}
}

// TestTornTailTruncated simulates a crash mid-record: everything
// before the torn record replays, the tail is gone, and appends
// continue from the cut.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SyncEvery = 1
	l := mustOpen(t, dir, opts)
	for i := 0; i < 5; i++ {
		if err := l.Append(k("s", fmt.Sprintf("site-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Plant the torn record by hand, then drop the handle without Close
	// (Close would checkpoint; a crash doesn't).
	l.mu.Lock()
	l.active().writeTorn(k("s", "torn").Encode(), bytes.Repeat([]byte("x"), 64))
	l.mu.Unlock()
	l.closeFiles()

	opts.Resume = true
	r := mustOpen(t, dir, opts)
	defer r.Close()
	if got := r.Len(); got != 5 {
		t.Fatalf("replayed %d entries, want 5 (torn tail must not count)", got)
	}
	if r.Has(k("s", "torn")) {
		t.Fatal("torn record replayed as a phantom entry")
	}
	if err := r.Append(k("s", "after"), []byte("w")); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// A second resume sees the truncated-then-appended log as clean.
	rr := mustOpen(t, dir, opts)
	defer rr.Close()
	if got := rr.Len(); got != 6 {
		t.Fatalf("second replay %d entries, want 6", got)
	}
}

// TestKillSwitchInProcess pins the in-process crash injection: the
// Nth append returns ErrKilled, the log is poisoned, and a resumed
// open sees exactly the appends that were durable — including the torn
// record being invisible.
func TestKillSwitchInProcess(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			dir := t.TempDir()
			opts := testOpts()
			opts.Kill = &KillSwitch{After: 3, Torn: torn}
			l := mustOpen(t, dir, opts)
			var killed int
			for i := 0; i < 5; i++ {
				err := l.Append(k("s", fmt.Sprintf("site-%d", i)), []byte("v"))
				switch {
				case i < 2 && err != nil:
					t.Fatalf("append %d: %v", i, err)
				case i >= 2 && !errors.Is(err, ErrKilled):
					t.Fatalf("append %d after kill = %v, want ErrKilled", i, err)
				case errors.Is(err, ErrKilled):
					killed++
				}
			}
			if killed != 3 {
				t.Fatalf("%d appends returned ErrKilled, want 3 (the kill + the poisoned rest)", killed)
			}
			if err := l.Sync(); !errors.Is(err, ErrKilled) {
				t.Fatalf("Sync on killed store = %v, want ErrKilled", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close on killed store: %v", err)
			}

			ropts := testOpts()
			ropts.Resume = true
			r := mustOpen(t, dir, ropts)
			defer r.Close()
			if got := r.Len(); got != 2 {
				t.Fatalf("resumed with %d entries, want 2 (appends before the kill)", got)
			}
			if r.Has(k("s", "site-2")) {
				t.Fatal("the killed append leaked into the resumed store")
			}
		})
	}
}

// TestKillResumeDigestEqual is the store-level half of the crashsafety
// gate: finishing the same appends across a kill/resume yields the
// same digest as never crashing.
func TestKillResumeDigestEqual(t *testing.T) {
	appendAll := func(l *Log) []error {
		var errs []error
		for i := 0; i < 10; i++ {
			errs = append(errs, l.Append(k("s", fmt.Sprintf("site-%d", i)), []byte(fmt.Sprintf("payload-%d", i))))
		}
		return errs
	}

	// Uninterrupted baseline.
	base := mustOpen(t, t.TempDir(), testOpts())
	for _, err := range appendAll(base) {
		if err != nil {
			t.Fatal(err)
		}
	}
	baseN, baseDigest := base.Digest()
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// Killed at append 6, then resumed; the resumed run skips what is
	// durable (Has) and re-appends the rest — the caller-side protocol
	// CrawlStage follows.
	dir := t.TempDir()
	opts := testOpts()
	opts.Kill = &KillSwitch{After: 6, Torn: true}
	dead := mustOpen(t, dir, opts)
	appendAll(dead)
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}

	ropts := testOpts()
	ropts.Resume = true
	r := mustOpen(t, dir, ropts)
	defer r.Close()
	for i := 0; i < 10; i++ {
		key := k("s", fmt.Sprintf("site-%d", i))
		if r.Has(key) {
			continue
		}
		if err := r.Append(key, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n, digest := r.Digest()
	if n != baseN || digest != baseDigest {
		t.Fatalf("kill/resume digest (%d, %s) != uninterrupted (%d, %s)", n, digest, baseN, baseDigest)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 1024 // rotate fast
	l := mustOpen(t, dir, opts)
	for i := 0; i < 50; i++ {
		if err := l.Append(k("s", fmt.Sprintf("site-%02d", i)), bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segments) < 2 {
		t.Fatalf("expected rotation, still %d segment(s)", len(l.segments))
	}
	_, wantDigest := l.Digest()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("expected multiple segment files, got %v", names)
	}

	opts.Resume = true
	r := mustOpen(t, dir, opts)
	defer r.Close()
	if got := r.Len(); got != 50 {
		t.Fatalf("replayed %d entries across segments, want 50", got)
	}
	if _, digest := r.Digest(); digest != wantDigest {
		t.Fatal("multi-segment replay digest differs")
	}
	// Values in sealed segments still read back.
	if _, ok, err := r.Get(k("s", "site-00")); err != nil || !ok {
		t.Fatalf("Get from sealed segment: ok=%v err=%v", ok, err)
	}
}

// TestCorruptSealedSegmentIsTyped: damage inside a sealed (non-final)
// segment must be ErrCorrupt, not a silent truncation.
func TestCorruptSealedSegmentIsTyped(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 512
	l := mustOpen(t, dir, opts)
	for i := 0; i < 30; i++ {
		if err := l.Append(k("s", fmt.Sprintf("site-%02d", i)), bytes.Repeat([]byte("y"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Skip("rotation did not trigger at this record size")
	}
	// Flip a byte in the middle of the FIRST segment's record area.
	first := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	opts.Resume = true
	if _, err := Open(dir, opts); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointWritten(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	if err := l.Append(k("s", "a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cp, err := readCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint after Checkpoint()")
	}
	if cp.Fingerprint != testFP || cp.Seed != 2019 || cp.Entries != 1 {
		t.Fatalf("checkpoint = %+v", cp)
	}
	_, wantDigest := l.Digest()
	if cp.Digest != wantDigest {
		t.Fatalf("checkpoint digest %s != live digest %s", cp.Digest, wantDigest)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	l := mustOpen(t, t.TempDir(), testOpts())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(k("s", "a"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if _, _, err := l.Get(k("s", "a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if err := l.Scan("", func(Key, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	opts := testOpts()
	opts.Metrics = reg
	l := mustOpen(t, dir, opts)
	for i := 0; i < 8; i++ {
		if err := l.Append(k("s", fmt.Sprintf("site-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_append_total").Value(); got != 8 {
		t.Fatalf("store_append_total = %d, want 8", got)
	}
	if got := reg.Counter("store_sync_total").Value(); got == 0 {
		t.Fatal("store_sync_total never incremented")
	}

	ropts := testOpts()
	ropts.Metrics = reg
	ropts.Resume = true
	r := mustOpen(t, dir, ropts)
	defer r.Close()
	if got := reg.Counter("store_replay_records_total").Value(); got != 8 {
		t.Fatalf("store_replay_records_total = %d, want 8", got)
	}
}

// TestStoreInterface pins that *Log satisfies Store.
var _ Store = (*Log)(nil)
