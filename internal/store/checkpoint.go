package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointName is the checkpoint file inside a store directory.
const checkpointName = "checkpoint.json"

// checkpoint summarizes a store's durable state: identity, entry
// count, content digest, and per-segment durable sizes. It is written
// atomically (temp file + rename) so a crash mid-checkpoint leaves the
// previous checkpoint intact; replay never needs it — segments are
// self-describing — but resume uses it for a cheap fingerprint check
// and operators use it to see what a directory holds.
type checkpoint struct {
	Version     int        `json:"version"`
	Fingerprint string     `json:"config_fingerprint"`
	Seed        int64      `json:"seed"`
	Entries     int        `json:"entries"`
	Digest      string     `json:"digest"`
	Segments    []segstate `json:"segments"`
}

type segstate struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// writeCheckpointLocked renders and atomically installs the checkpoint.
// Callers have synced the active segment.
// guarded by mu
func (l *Log) writeCheckpointLocked() error {
	cp := checkpoint{
		Version:     segVersion,
		Fingerprint: l.opts.Fingerprint,
		Seed:        l.opts.Seed,
		Entries:     len(l.index),
		Digest:      l.digest.Sum(),
	}
	for _, seg := range l.segments {
		cp.Segments = append(cp.Segments, segstate{Name: filepath.Base(seg.path), Size: seg.size})
	}
	sort.Slice(cp.Segments, func(i, j int) bool { return cp.Segments[i].Name < cp.Segments[j].Name })
	raw, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	raw = append(raw, '\n')
	tmp := filepath.Join(l.dir, checkpointName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName)); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads dir's checkpoint, (nil, nil) when absent — a
// crash can predate the first checkpoint, which is fine because the
// segment headers carry the same identity.
func readCheckpoint(dir string) (*checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		// A torn checkpoint rename cannot happen (rename is atomic), but a
		// hand-damaged file should not brick the store: segments are the
		// source of truth.
		return nil, nil
	}
	return &cp, nil
}
