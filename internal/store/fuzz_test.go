package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the segment replay path as the
// tail of an otherwise valid segment and holds replay to its contract:
// it must either recover cleanly (truncating the tail of the final
// segment) or fail with a typed corruption error — never panic, and
// never surface a record that was not durably written.
//
// The corpus seeds cover the crash shapes the kill switch plants
// (clean boundary, torn header, torn payload) plus bit flips in every
// frame field.
func FuzzReplay(f *testing.F) {
	opts := Options{Fingerprint: "00ddba11fee1dead", Seed: 2019, SyncEvery: 1}

	// Build one valid segment prefix with three known records.
	seedDir := f.TempDir()
	l, err := Open(seedDir, opts)
	if err != nil {
		f.Fatal(err)
	}
	known := map[string]string{}
	for i := 0; i < 3; i++ {
		key := Key{Stage: "s", Corpus: "porn", Vantage: "ES", Site: fmt.Sprintf("site-%d", i)}
		val := fmt.Sprintf("payload-%d", i)
		if err := l.Append(key, []byte(val)); err != nil {
			f.Fatal(err)
		}
		known[key.Encode()] = val
	}
	if err := l.Sync(); err != nil {
		f.Fatal(err)
	}
	l.closeFiles()
	prefix, err := os.ReadFile(filepath.Join(seedDir, "seg-000001.wal"))
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: clean end, torn header, torn payload, a full valid
	// record, bit-flipped length/CRC/payload bytes, and a huge length.
	valid := encodeRecordPayload(Key{Stage: "s", Corpus: "porn", Vantage: "ES", Site: "extra"}.Encode(), []byte("v"))
	rec := frameRecord(valid)
	f.Add([]byte{})
	f.Add(rec[:3])
	f.Add(rec[:len(rec)-1])
	f.Add(rec)
	for _, i := range []int{0, 4, 9, len(rec) - 1} {
		flipped := bytes.Clone(rec)
		flipped[i] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "seg-000001.wal")
		if err := os.WriteFile(seg, append(bytes.Clone(prefix), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		ropts := opts
		ropts.Resume = true
		ropts.SyncEvery = 1 << 20 // keep the fuzz loop off the fsync path
		r, err := Open(dir, ropts)
		if err != nil {
			// The only acceptable failures are typed.
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprintMismatch) {
				t.Fatalf("untyped replay error: %v", err)
			}
			return
		}
		defer r.Close()
		// The three durable records must all survive, verbatim.
		for ek, want := range known {
			key, err := DecodeKey(ek)
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := r.Get(key)
			if err != nil || !ok {
				t.Fatalf("durable record %s lost: ok=%v err=%v", ek, ok, err)
			}
			if string(got) != want {
				t.Fatalf("durable record %s = %q, want %q", ek, got, want)
			}
		}
		// No phantom records: anything beyond the durable set must decode
		// as a well-formed key (it framed and CRC'd correctly), and the
		// total can exceed the prefix only via records the tail fully and
		// validly encodes.
		err = r.Scan("", func(key Key, _ []byte) error {
			if key.Stage == "" && key.Corpus == "" && key.Vantage == "" && key.Site == "" {
				return fmt.Errorf("empty key surfaced by replay")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan after replay: %v", err)
		}
		// And the recovered store must be appendable: replay leaves a
		// usable log, whatever the tail looked like.
		if err := r.Append(Key{Stage: "s", Corpus: "porn", Vantage: "ES", Site: "post"}, []byte("p")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

// frameRecord renders one full framed record (length, CRC, payload)
// the way segment.append lays it down.
func frameRecord(payload []byte) []byte {
	return appendFrame(nil, payload)
}
