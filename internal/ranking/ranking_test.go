package ranking

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	d1 := New(42)
	d2 := New(42)
	for _, s := range []Site{{Host: "a.com", BaseRank: 10}, {Host: "b.com", BaseRank: 50000}} {
		d1.Add(s)
		d2.Add(s)
	}
	for day := 0; day < 10; day++ {
		r1, p1 := d1.RankOn("a.com", day)
		r2, p2 := d2.RankOn("a.com", day)
		if r1 != r2 || p1 != p2 {
			t.Fatalf("day %d: (%d,%v) != (%d,%v)", day, r1, p1, r2, p2)
		}
	}
}

func TestSeedChangesRanks(t *testing.T) {
	d1, d2 := New(1), New(2)
	d1.Add(Site{Host: "a.com", BaseRank: 5000})
	d2.Add(Site{Host: "a.com", BaseRank: 5000})
	same := 0
	for day := 0; day < 50; day++ {
		r1, _ := d1.RankOn("a.com", day)
		r2, _ := d2.RankOn("a.com", day)
		if r1 == r2 {
			same++
		}
	}
	if same > 45 {
		t.Errorf("different seeds produced %d/50 identical ranks", same)
	}
}

func TestTopSiteAlwaysPresent(t *testing.T) {
	d := New(7)
	d.Add(Site{Host: "pornhub.com", BaseRank: 22})
	st := d.StatsFor("pornhub.com")
	if st.DaysPresent != Days {
		t.Errorf("top site present %d days, want %d", st.DaysPresent, Days)
	}
	if st.Best < 1 || st.Best > 1000 {
		t.Errorf("best rank = %d, want within top-1k", st.Best)
	}
	if st.Median < st.Best {
		t.Errorf("median %d < best %d", st.Median, st.Best)
	}
}

func TestTailSiteIntermittent(t *testing.T) {
	d := New(7)
	d.Add(Site{Host: "obscure.porn", BaseRank: 900_000, Volatility: 1.0})
	st := d.StatsFor("obscure.porn")
	if st.DaysPresent == 0 || st.DaysPresent == Days {
		t.Errorf("tail site present %d days, want intermittent", st.DaysPresent)
	}
	if st.Presence <= 0 || st.Presence >= 1 {
		t.Errorf("presence = %f, want strictly between 0 and 1", st.Presence)
	}
}

func TestUnknownHostAbsent(t *testing.T) {
	d := New(1)
	if _, present := d.RankOn("nope.example", 0); present {
		t.Error("unknown host must be absent")
	}
	st := d.StatsFor("nope.example")
	if st.Best != 0 || st.DaysPresent != 0 {
		t.Errorf("unknown stats = %+v", st)
	}
}

func TestAllStatsOrdering(t *testing.T) {
	d := New(3)
	d.Add(Site{Host: "big.com", BaseRank: 10})
	d.Add(Site{Host: "mid.com", BaseRank: 10_000})
	d.Add(Site{Host: "tail.com", BaseRank: 3_000_000, Volatility: 0.1}) // never present
	all := d.AllStats()
	if len(all) != 3 {
		t.Fatalf("AllStats len = %d", len(all))
	}
	if all[0].Host != "big.com" {
		t.Errorf("first = %q, want big.com", all[0].Host)
	}
	if all[2].Host != "tail.com" || all[2].Best != 0 {
		t.Errorf("absent site should sort last: %+v", all[2])
	}
}

func TestSearchKeywords(t *testing.T) {
	d := New(1)
	for _, h := range []string{"pornhub.com", "youtube.com", "sexygames.net", "news.org"} {
		d.Add(Site{Host: h, BaseRank: 100})
	}
	got := d.SearchKeywords([]string{"porn", "tube", "sex"})
	want := map[string]bool{"pornhub.com": true, "youtube.com": true, "sexygames.net": true}
	if len(got) != len(want) {
		t.Fatalf("SearchKeywords = %v", got)
	}
	for _, h := range got {
		if !want[h] {
			t.Errorf("unexpected hit %q", h)
		}
	}
}

func TestIntervalOf(t *testing.T) {
	cases := []struct {
		rank int
		want Interval
	}{
		{1, IntervalTop1K}, {1000, IntervalTop1K},
		{1001, Interval1K10K}, {10000, Interval1K10K},
		{10001, Interval10K100K}, {100000, Interval10K100K},
		{100001, Interval100KUp}, {0, Interval100KUp},
	}
	for _, c := range cases {
		if got := IntervalOf(c.rank); got != c.want {
			t.Errorf("IntervalOf(%d) = %v, want %v", c.rank, got, c.want)
		}
	}
}

func TestIntervalString(t *testing.T) {
	if IntervalTop1K.String() != "0 — 1k" || Interval100KUp.String() != "100k+" {
		t.Error("Interval.String mismatch")
	}
}

func TestRankBoundsProperty(t *testing.T) {
	d := New(99)
	d.Add(Site{Host: "x.com", BaseRank: 500})
	f := func(day uint16) bool {
		r, present := d.RankOn("x.com", int(day)%Days)
		if !present {
			return r == 0
		}
		return r >= 1 && r <= Top1M
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOverwrites(t *testing.T) {
	d := New(1)
	d.Add(Site{Host: "A.com", BaseRank: 10})
	d.Add(Site{Host: "a.com", BaseRank: 20})
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1 (case-insensitive overwrite)", d.Len())
	}
}

func TestHostsSorted(t *testing.T) {
	d := New(1)
	d.Add(Site{Host: "b.com", BaseRank: 1})
	d.Add(Site{Host: "a.com", BaseRank: 1})
	hs := d.Hosts()
	if len(hs) != 2 || hs[0] != "a.com" || hs[1] != "b.com" {
		t.Errorf("Hosts = %v", hs)
	}
}

func TestMedianRankGrowsWithBase(t *testing.T) {
	d := New(5)
	d.Add(Site{Host: "top.com", BaseRank: 100})
	d.Add(Site{Host: "tail.com", BaseRank: 200_000})
	top, tail := d.StatsFor("top.com"), d.StatsFor("tail.com")
	if top.Median >= tail.Median {
		t.Errorf("median(top)=%d should be < median(tail)=%d", top.Median, tail.Median)
	}
}
