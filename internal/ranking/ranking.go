// Package ranking simulates the longitudinal Alexa top-1M dataset the study
// uses as a popularity oracle: 365 daily rank snapshots for every site in
// the universe throughout 2018, plus the keyword search over indexed
// hostnames and the Adult category service used during corpus compilation
// (Section 3 of the paper).
//
// Real top lists are noisy and churn heavily day to day (Scheitle et al.,
// cited by the paper), so each site's daily rank is drawn from a log-normal
// distribution around its base rank; sites whose sampled rank exceeds one
// million are absent from that day's snapshot. All draws are deterministic
// functions of (dataset seed, host, day), so results are reproducible and
// independent of insertion or iteration order.
package ranking

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// Top1M is the size of the simulated daily toplist.
const Top1M = 1_000_000

// Days is the length of the longitudinal window (2018).
const Days = 365

// Site is one entry of the rank universe.
type Site struct {
	Host       string
	BaseRank   int     // central popularity rank (1 = most popular)
	Volatility float64 // log-normal sigma of daily rank noise; 0 picks a default
}

// Stats is the longitudinal summary for a site, the quantities Figure 1
// plots: best and median rank over the year and the share of days the site
// appeared in the top-1M at all.
type Stats struct {
	Host        string
	Best        int     // best (lowest) rank over days present; 0 if never present
	Median      int     // median rank over days present; 0 if never present
	DaysPresent int     // days the site appeared in the top-1M
	Presence    float64 // DaysPresent / Days
}

// Dataset is the simulated longitudinal toplist.
type Dataset struct {
	seed  uint64
	sites map[string]Site
}

// New creates an empty dataset with the given seed.
func New(seed uint64) *Dataset {
	return &Dataset{seed: seed, sites: make(map[string]Site)}
}

// Add registers a site. Adding the same host twice overwrites the entry.
func (d *Dataset) Add(s Site) {
	s.Host = strings.ToLower(s.Host)
	if s.Volatility == 0 {
		s.Volatility = defaultVolatility(s.BaseRank)
	}
	d.sites[s.Host] = s
}

// Len returns the number of registered sites.
func (d *Dataset) Len() int { return len(d.sites) }

// BaseRank returns a site's central popularity rank (0 when unknown).
// Unlike StatsFor it is a plain map lookup, cheap enough for per-visit
// callers like the flight recorder.
func (d *Dataset) BaseRank(host string) int {
	return d.sites[strings.ToLower(host)].BaseRank
}

// Hosts returns all registered hosts, sorted.
func (d *Dataset) Hosts() []string {
	out := make([]string, 0, len(d.sites))
	for h := range d.sites {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// defaultVolatility grows mildly with rank. It stays small because daily
// ranks are strongly autocorrelated in real top lists: the best rank over
// a year sits near the base rank, not orders of magnitude above it.
// Presence churn at the bottom of the list is modeled separately by
// dropProb.
func defaultVolatility(base int) float64 {
	if base < 1 {
		base = 1
	}
	return 0.04 + 0.045*math.Log10(float64(base))
}

// dropProb is the per-day probability that a site misses the top-1M
// snapshot entirely, independent of its sampled rank — the heavy bottom-
// of-list churn of real top lists (Scheitle et al.). Calibrated so that
// roughly the best-ranked sixth of a paper-shaped corpus is present all
// 365 days (Figure 1: 16% of porn sites were always in the top-1M).
func dropProb(base int) float64 {
	if base <= 10000 {
		return 0
	}
	p := 0.0011 * float64(base) / 10000
	if p > 0.55 {
		p = 0.55
	}
	return p
}

// hash64 mixes the dataset seed, host and day into a uint64. The FNV state
// is passed through a murmur3-style finalizer: FNV alone maps inputs that
// differ only in a trailing byte (consecutive days) onto an arithmetic
// progression, which made per-host daily draws strongly correlated.
func (d *Dataset) hash64(host string, day int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(d.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(host))
	buf[0], buf[1], buf[2], buf[3] = byte(day), byte(day>>8), byte(day>>16), byte(day>>24)
	h.Write(buf[:4])
	return mix64(h.Sum64())
}

// mix64 is the murmur3 64-bit finalizer: full avalanche, so structured
// inputs come out uniformly scattered.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// unitUniform maps a hash to (0,1).
func unitUniform(h uint64) float64 {
	return (float64(h>>11) + 0.5) / float64(1<<53)
}

// gaussian returns a standard normal deviate from two independent hashes
// via Box-Muller.
func gaussian(h1, h2 uint64) float64 {
	u1, u2 := unitUniform(h1), unitUniform(h2)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RankOn returns the site's rank on the given day (0-based, 0..Days-1) and
// whether it was present in that day's top-1M snapshot. Unknown hosts are
// absent every day.
func (d *Dataset) RankOn(host string, day int) (rank int, present bool) {
	s, ok := d.sites[strings.ToLower(host)]
	if !ok {
		return 0, false
	}
	// Bottom-of-list churn: the site may miss the snapshot entirely.
	if p := dropProb(s.BaseRank); p > 0 {
		if unitUniform(d.hash64(s.Host, 1_000_000+day)) < p {
			return 0, false
		}
	}
	z := gaussian(d.hash64(s.Host, day*2), d.hash64(s.Host, day*2+1))
	logRank := math.Log(float64(s.BaseRank)) + s.Volatility*z
	r := int(math.Round(math.Exp(logRank)))
	if r < 1 {
		r = 1
	}
	if r > Top1M {
		return 0, false
	}
	return r, true
}

// StatsFor computes the longitudinal summary for a host.
func (d *Dataset) StatsFor(host string) Stats {
	host = strings.ToLower(host)
	st := Stats{Host: host}
	var ranks []int
	for day := 0; day < Days; day++ {
		if r, ok := d.RankOn(host, day); ok {
			ranks = append(ranks, r)
		}
	}
	st.DaysPresent = len(ranks)
	st.Presence = float64(len(ranks)) / float64(Days)
	if len(ranks) == 0 {
		return st
	}
	sort.Ints(ranks)
	st.Best = ranks[0]
	st.Median = ranks[len(ranks)/2]
	return st
}

// AllStats computes summaries for every registered host, sorted by best
// rank ascending (absent sites last), which is the x-axis ordering of
// Figure 1.
func (d *Dataset) AllStats() []Stats {
	out := make([]Stats, 0, len(d.sites))
	for _, h := range d.Hosts() {
		out = append(out, d.StatsFor(h))
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Best, out[j].Best
		if bi == 0 {
			bi = math.MaxInt32
		}
		if bj == 0 {
			bj = math.MaxInt32
		}
		if bi != bj {
			return bi < bj
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// SearchKeywords returns the hosts whose name contains any of the keywords,
// sorted. This is the paper's third corpus-discovery source: searching the
// 2018 toplists for porn-related substrings ("porn", "tube", "sex", ...),
// which introduces false positives (YouTube matches "tube") that the
// sanitization crawl later removes.
func (d *Dataset) SearchKeywords(keywords []string) []string {
	var out []string
	for h := range d.sites {
		for _, k := range keywords {
			if strings.Contains(h, strings.ToLower(k)) {
				out = append(out, h)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Interval is a popularity interval as used by Tables 3 and 6.
type Interval int

// Popularity intervals by the site's best 2018 rank.
const (
	IntervalTop1K   Interval = iota // 0 — 1k
	Interval1K10K                   // 1k — 10k
	Interval10K100K                 // 10k — 100k
	Interval100KUp                  // 100k+ (including never ranked)
	NumIntervals
)

// String renders the interval as the paper prints it.
func (iv Interval) String() string {
	switch iv {
	case IntervalTop1K:
		return "0 — 1k"
	case Interval1K10K:
		return "1k — 10k"
	case Interval10K100K:
		return "10k — 100k"
	default:
		return "100k+"
	}
}

// IntervalOf maps a best rank to its interval. Rank 0 (never in the top-1M)
// falls in the 100k+ bucket, like the paper's never-indexed tail sites.
func IntervalOf(bestRank int) Interval {
	switch {
	case bestRank >= 1 && bestRank <= 1000:
		return IntervalTop1K
	case bestRank > 1000 && bestRank <= 10000:
		return Interval1K10K
	case bestRank > 10000 && bestRank <= 100000:
		return Interval10K100K
	default:
		return Interval100KUp
	}
}
