//go:build !unix

package obs

import "time"

// processCPUTime has no portable implementation off unix; the CPU column
// of the stage-resource metrics reads zero there while allocation, GC and
// goroutine attribution keep working.
func processCPUTime() time.Duration { return 0 }
