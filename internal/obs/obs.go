// Package obs is the study-wide observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket latency histograms with
// quantile summaries), lightweight span tracing into a bounded ring
// buffer, a per-visit flight recorder (one head-sampled wide event per
// page visit, failures always kept), a structured leveled logger, and an
// admin HTTP handler that exposes everything — Prometheus text format
// under /metrics, recent spans as JSON under /spans and as Chrome
// trace-event (Perfetto-loadable) JSON under /trace, visit events as
// NDJSON under /flight, and net/http/pprof under /debug/pprof/.
//
// The paper's measurement run is a long multi-stage pipeline (dual crawls
// from six vantage points feeding a dozen analyses); obs makes that
// pipeline watchable while it runs, the way continuously-operated
// measurement platforms (WhoTracks.Me) monitor theirs, and records the
// per-stage timings every performance comparison needs.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every method on a nil instrument, span, tracer or logger is a cheap
// no-op. Code instruments itself unconditionally and the caller decides at
// wiring time whether telemetry is collected — the disabled path costs a
// nil check per operation.
package obs
