package obs

import (
	"runtime"
	"time"
)

// ResourceSnapshot captures the process-wide resource odometers a stage
// boundary cares about: cumulative CPU time, cumulative heap allocation,
// completed GC cycles and the live goroutine count. Two snapshots bracket
// a pipeline stage; their difference is the cost attributed to it.
//
// All fields except Goroutines are monotonic, so deltas are well defined
// even when stages overlap — but they are *process* odometers, so when
// the scheduler runs stages concurrently each running stage counts the
// work of every other stage active at the same time. With one stage
// worker (or the serial pipeline) the attribution is exact; under
// concurrency it is an upper bound, and the pprof-label attribution in
// cmd/studyprof is the precise per-stage split.
type ResourceSnapshot struct {
	// CPU is the process's cumulative user+system CPU time (zero on
	// platforms without rusage support).
	CPU time.Duration
	// TotalAlloc is runtime.MemStats.TotalAlloc: cumulative heap bytes
	// allocated since process start.
	TotalAlloc uint64
	// GCCycles is runtime.MemStats.NumGC: completed GC cycles.
	GCCycles uint32
	// Goroutines is the instantaneous goroutine count.
	Goroutines int
}

// TakeResourceSnapshot reads the current process odometers. It calls
// runtime.ReadMemStats, which briefly stops the world — cheap at stage
// granularity (tens of calls per study run), not per-request.
func TakeResourceSnapshot() ResourceSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ResourceSnapshot{
		CPU:        processCPUTime(),
		TotalAlloc: ms.TotalAlloc,
		GCCycles:   ms.NumGC,
		Goroutines: runtime.NumGoroutine(),
	}
}

// RecordStageResources folds the delta between two snapshots into the
// per-stage resource metrics:
//
//	study_stage_cpu_seconds{stage=...}      process CPU consumed while the stage ran
//	study_stage_alloc_bytes_total{stage=...} heap bytes allocated while the stage ran
//	study_stage_gc_cycles_total{stage=...}   GC cycles completed while the stage ran
//	study_stage_goroutines_peak{stage=...}   max goroutine count seen at its boundaries
//
// The stage label comes from the scheduler's declared stage names, so
// cardinality is bounded by the pipeline's stage count.
func (r *Registry) RecordStageResources(stage string, start, end ResourceSnapshot) {
	if r == nil {
		return
	}
	r.Describe("study_stage_cpu_seconds",
		"Process CPU seconds consumed while the stage ran (overlapping stages each count concurrent work).")
	r.Describe("study_stage_alloc_bytes_total",
		"Heap bytes allocated while the stage ran (process-wide delta).")
	r.Describe("study_stage_gc_cycles_total",
		"GC cycles completed while the stage ran (process-wide delta).")
	r.Describe("study_stage_goroutines_peak",
		"Highest goroutine count observed at the stage's start/done boundaries.")
	if d := end.CPU - start.CPU; d > 0 {
		r.Gauge("study_stage_cpu_seconds", "stage", stage).Add(d.Seconds())
	}
	if d := end.TotalAlloc - start.TotalAlloc; d > 0 {
		r.Counter("study_stage_alloc_bytes_total", "stage", stage).Add(d)
	}
	if d := end.GCCycles - start.GCCycles; d > 0 {
		r.Counter("study_stage_gc_cycles_total", "stage", stage).Add(uint64(d))
	}
	peak := end.Goroutines
	if start.Goroutines > peak {
		peak = start.Goroutines
	}
	g := r.Gauge("study_stage_goroutines_peak", "stage", stage)
	if float64(peak) > g.Value() {
		g.Set(float64(peak))
	}
}
