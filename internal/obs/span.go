package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span as stored in the tracer's ring buffer.
type SpanRecord struct {
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// TraceID groups spans from different processes into one causal tree:
	// a coordinator stamps its run-level trace ID into every span it
	// records and propagates it to workers inside shard assignments, so a
	// merged export can tell one fleet run's spans from another's.
	TraceID  string            `json:"trace_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer; the
// newest spans overwrite the oldest, so memory stays bounded no matter how
// long the study runs.
type Tracer struct {
	seq atomic.Uint64

	// evictedCtr, when wired by CountIn, counts ring overwrites so span
	// loss is a visible metric instead of a silent property of buffer
	// sizing.
	evictedCtr *Counter

	mu      sync.Mutex
	buf     []SpanRecord
	next    int    // ring cursor
	full    bool   // buffer has wrapped
	traceID string // stamped into every record; see SetTraceID
}

// NewTracer returns a tracer keeping the most recent capacity spans
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]SpanRecord, capacity)}
}

// SetTraceID sets the run-level trace ID stamped into every span recorded
// from now on. Spans already in the ring keep whatever ID they were
// recorded under. Nil-safe.
func (t *Tracer) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the current run-level trace ID ("" until SetTraceID).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// CountIn registers the tracer's span-loss counter with reg and returns
// the tracer: spans_evicted_total counts ring overwrites, so a trace
// export missing spans can be diagnosed as buffer pressure rather than
// instrumentation gaps. Nil-safe on both sides.
func (t *Tracer) CountIn(reg *Registry) *Tracer {
	if t == nil || reg == nil {
		return t
	}
	reg.Describe("spans_evicted_total", "completed spans overwritten in the tracer ring before export")
	ctr := reg.Counter("spans_evicted_total")
	t.mu.Lock()
	t.evictedCtr = ctr
	t.mu.Unlock()
	return t
}

// MintTraceID derives a run-level trace ID from the study's config
// fingerprint and seed — a pure function, so the two ends of a fleet
// (coordinator and equivalence harnesses) agree on it without a wire
// exchange and deterministic runs keep deterministic telemetry.
func MintTraceID(fingerprint string, seed int64) string {
	if len(fingerprint) > 16 {
		fingerprint = fingerprint[:16]
	}
	return fmt.Sprintf("run-%s-%d", fingerprint, seed)
}

// Span is one in-flight timed operation. End records it.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

type ctxKey int

const (
	ctxKeyTracer ctxKey = iota
	ctxKeySpan
)

// WithTracer returns a context carrying the tracer, so downstream code can
// open child spans with the package-level StartSpan.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyTracer, tr)
}

// TracerFrom extracts the context's tracer (nil if absent).
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(ctxKeyTracer).(*Tracer)
	return tr
}

// StartSpan opens a span named name under the context's tracer and current
// span, returning a context in which the new span is current. With no
// tracer in the context it returns (ctx, nil); a nil span's methods no-op,
// so call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return TracerFrom(ctx).Start(ctx, name)
}

// Start opens a span on this tracer, parented to the context's current
// span. Nil-safe.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tr:    t,
		id:    t.seq.Add(1),
		name:  name,
		start: time.Now(),
	}
	if parent, _ := ctx.Value(ctxKeySpan).(*Span); parent != nil {
		s.parent = parent.id
	}
	// Ensure the tracer rides along even when the caller used Start
	// directly on a tracer the context does not carry yet.
	if TracerFrom(ctx) != t {
		ctx = WithTracer(ctx, t)
	}
	return context.WithValue(ctx, ctxKeySpan, s), s
}

// StartRemote opens a span whose parent lives in another process: the
// propagated parent span ID wins over whatever span the local context
// carries, so a worker's spans stitch under the coordinator's dispatch
// span in a merged trace. Nil-safe.
func (t *Tracer) StartRemote(ctx context.Context, name string, parentID uint64) (context.Context, *Span) {
	ctx, s := t.Start(ctx, name)
	if s != nil && parentID != 0 {
		s.parent = parentID
	}
	return ctx, s
}

// SetAttr attaches a key/value attribute to the span. After End the call
// is a no-op: End publishes the attrs map into the tracer's ring buffer,
// where a concurrent Recent() reader may already be decoding it, so a
// late write must never reach that shared map.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// ID returns the span's tracer-unique identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End records the span into the tracer's ring buffer and returns its
// duration. Only the first End counts.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return d
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    attrs,
	})
	return d
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if r.TraceID == "" {
		r.TraceID = t.traceID
	}
	evict := t.full
	t.buf[t.next] = r
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	ctr := t.evictedCtr
	t.mu.Unlock()
	if evict {
		ctr.Inc()
	}
}

// Recent returns the buffered spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]SpanRecord, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]SpanRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Capacity returns the ring-buffer size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
