package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span as stored in the tracer's ring buffer.
type SpanRecord struct {
	ID       uint64            `json:"id"`
	ParentID uint64            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer; the
// newest spans overwrite the oldest, so memory stays bounded no matter how
// long the study runs.
type Tracer struct {
	seq atomic.Uint64

	mu   sync.Mutex
	buf  []SpanRecord
	next int  // ring cursor
	full bool // buffer has wrapped
}

// NewTracer returns a tracer keeping the most recent capacity spans
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]SpanRecord, capacity)}
}

// Span is one in-flight timed operation. End records it.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

type ctxKey int

const (
	ctxKeyTracer ctxKey = iota
	ctxKeySpan
)

// WithTracer returns a context carrying the tracer, so downstream code can
// open child spans with the package-level StartSpan.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyTracer, tr)
}

// TracerFrom extracts the context's tracer (nil if absent).
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(ctxKeyTracer).(*Tracer)
	return tr
}

// StartSpan opens a span named name under the context's tracer and current
// span, returning a context in which the new span is current. With no
// tracer in the context it returns (ctx, nil); a nil span's methods no-op,
// so call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return TracerFrom(ctx).Start(ctx, name)
}

// Start opens a span on this tracer, parented to the context's current
// span. Nil-safe.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tr:    t,
		id:    t.seq.Add(1),
		name:  name,
		start: time.Now(),
	}
	if parent, _ := ctx.Value(ctxKeySpan).(*Span); parent != nil {
		s.parent = parent.id
	}
	// Ensure the tracer rides along even when the caller used Start
	// directly on a tracer the context does not carry yet.
	if TracerFrom(ctx) != t {
		ctx = WithTracer(ctx, t)
	}
	return context.WithValue(ctx, ctxKeySpan, s), s
}

// SetAttr attaches a key/value attribute to the span. After End the call
// is a no-op: End publishes the attrs map into the tracer's ring buffer,
// where a concurrent Recent() reader may already be decoding it, so a
// late write must never reach that shared map.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// ID returns the span's tracer-unique identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End records the span into the tracer's ring buffer and returns its
// duration. Only the first End counts.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return d
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    attrs,
	})
	return d
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.buf[t.next] = r
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns the buffered spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]SpanRecord, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]SpanRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Capacity returns the ring-buffer size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
