package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets suits stop-the-world GC pauses: tens of microseconds on
// a healthy heap, milliseconds when the heap is thrashing.
var GCPauseBuckets = []float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025,
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1}

// RuntimePoller samples process runtime health into a registry on a fixed
// interval:
//
//	study_runtime_goroutines        live goroutine count
//	study_runtime_heap_alloc_bytes  bytes of live heap objects
//	study_runtime_heap_objects      live heap object count
//	study_runtime_next_gc_bytes     heap size that triggers the next GC
//	study_runtime_alloc_bytes_total cumulative heap bytes allocated
//	study_runtime_gc_cycles_total   completed GC cycles
//	study_runtime_gc_pause_seconds  stop-the-world pause distribution
//
// The poller owns only its ticker goroutine; Stop is idempotent and
// blocks until the goroutine has exited, so a stopped poller never
// mutates the registry again (the exposition-determinism tests depend on
// that quiescence). It reads ambient time only to pace itself — nothing
// it records feeds provenance manifests, which stay on the injected
// Study clock.
type RuntimePoller struct {
	reg  *Registry
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// mu serializes Sample against the poll loop.
	mu sync.Mutex
	// guarded by mu
	lastGC uint32
	// lastPauses is the NumGC high-water mark for pause-ring draining.
	// guarded by mu
	lastPauses uint64
	// guarded by mu
	lastAlloc uint64
}

// StartRuntimePoller registers the runtime health metrics in reg, takes
// one synchronous sample so /metrics is populated immediately, and then
// samples every interval (default 1s) until Stop. A nil registry returns
// a poller whose Stop is a no-op.
func StartRuntimePoller(reg *Registry, interval time.Duration) *RuntimePoller {
	p := &RuntimePoller{reg: reg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg == nil {
		close(p.done)
		return p
	}
	if interval <= 0 {
		interval = time.Second
	}
	reg.Describe("study_runtime_goroutines", "Live goroutine count, sampled by the runtime poller.")
	reg.Describe("study_runtime_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	reg.Describe("study_runtime_heap_objects", "Live heap object count (runtime.MemStats.HeapObjects).")
	reg.Describe("study_runtime_next_gc_bytes", "Heap size at which the next GC cycle triggers.")
	reg.Describe("study_runtime_alloc_bytes_total", "Cumulative heap bytes allocated since process start.")
	reg.Describe("study_runtime_gc_cycles_total", "Completed garbage-collection cycles.")
	reg.Describe("study_runtime_gc_pause_seconds", "Stop-the-world GC pause durations.")
	p.Sample()
	go p.loop(interval)
	return p
}

func (p *RuntimePoller) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.Sample()
		}
	}
}

// Sample takes one reading now. Safe to call concurrently with the
// poll loop (tests drive it directly).
func (p *RuntimePoller) Sample() {
	if p.reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.reg.Gauge("study_runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	p.reg.Gauge("study_runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	p.reg.Gauge("study_runtime_heap_objects").Set(float64(ms.HeapObjects))
	p.reg.Gauge("study_runtime_next_gc_bytes").Set(float64(ms.NextGC))
	if d := ms.TotalAlloc - p.lastAlloc; d > 0 {
		p.reg.Counter("study_runtime_alloc_bytes_total").Add(d)
		p.lastAlloc = ms.TotalAlloc
	}
	if ms.NumGC > p.lastGC {
		p.reg.Counter("study_runtime_gc_cycles_total").Add(uint64(ms.NumGC - p.lastGC))
		p.lastGC = ms.NumGC
	}
	// Drain newly completed pauses from the 256-entry ring; if more than
	// 256 cycles passed between samples the oldest are lost, matching the
	// runtime's own bookkeeping.
	if n := uint64(ms.NumGC); n > p.lastPauses {
		lo := p.lastPauses
		if n > lo+uint64(len(ms.PauseNs)) {
			lo = n - uint64(len(ms.PauseNs))
		}
		h := p.reg.Histogram("study_runtime_gc_pause_seconds", GCPauseBuckets)
		// Cycle i's pause lives at PauseNs[(i+255)%256] (1-based cycles).
		for i := lo + 1; i <= n; i++ {
			h.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		p.lastPauses = n
	}
}

// Stop halts the poll loop and waits for it to exit. Idempotent.
func (p *RuntimePoller) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
