package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document.
// Timestamps are relative to the earliest span so the trace opens at t=0.
// Spans are packed onto "threads" greedily: each span takes the lowest
// lane whose previous occupant ended before it started, so concurrent
// stages and visits render side by side instead of overdrawing.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	sorted := make([]SpanRecord, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })

	var epoch time.Time
	if len(sorted) > 0 {
		epoch = sorted[0].Start
	}
	var laneEnds []time.Time
	events := make([]chromeEvent, 0, len(sorted))
	for _, s := range sorted {
		lane := -1
		for i, end := range laneEnds {
			if !end.After(s.Start) {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, time.Time{})
		}
		laneEnds[lane] = s.Start.Add(s.Duration)

		args := make(map[string]string, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		args["span_id"] = strconv.FormatUint(s.ID, 10)
		if s.ParentID != 0 {
			args["parent_id"] = strconv.FormatUint(s.ParentID, 10)
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   s.Start.Sub(epoch).Microseconds(),
			Dur:  s.Duration.Microseconds(),
			PID:  1,
			TID:  lane + 1,
			Args: args,
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
