package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events, "M" metadata), loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceProcess is one process row of a merged fleet trace: the spans a
// single process recorded, exported under its own pid so Perfetto
// renders coordinator and workers side by side.
type TraceProcess struct {
	// Name labels the process row ("" emits no process_name metadata).
	Name string
	// PID is the trace-local process id (1-based; pick distinct values).
	PID int
	// Spans are the process's recorded spans, any order.
	Spans []SpanRecord
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document.
// Timestamps are relative to the earliest span so the trace opens at t=0.
// Spans are packed onto "threads" greedily: each span takes the lowest
// lane whose previous occupant ended before it started, so concurrent
// stages and visits render side by side instead of overdrawing.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return WriteChromeTraceProcesses(w, []TraceProcess{{PID: 1, Spans: spans}})
}

// WriteChromeTraceProcesses renders a merged multi-process trace: each
// TraceProcess becomes one process row (named by a process_name metadata
// event), lanes are packed per process, and every span's trace_id rides
// along in its args so a viewer can confirm the rows belong to one
// propagated fleet run. Timestamps share a single epoch — the earliest
// span across all processes — so cross-process causality reads directly
// off the timeline.
func WriteChromeTraceProcesses(w io.Writer, procs []TraceProcess) error {
	var epoch time.Time
	haveEpoch := false
	for _, p := range procs {
		for _, s := range p.Spans {
			if !haveEpoch || s.Start.Before(epoch) {
				epoch = s.Start
				haveEpoch = true
			}
		}
	}
	var events []chromeEvent
	for _, p := range procs {
		if p.Name != "" {
			events = append(events, chromeEvent{
				Name: "process_name",
				Cat:  "__metadata",
				Ph:   "M",
				PID:  p.PID,
				Args: map[string]string{"name": p.Name},
			})
		}
		sorted := make([]SpanRecord, len(p.Spans))
		copy(sorted, p.Spans)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })
		var laneEnds []time.Time
		for _, s := range sorted {
			lane := -1
			for i, end := range laneEnds {
				if !end.After(s.Start) {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnds)
				laneEnds = append(laneEnds, time.Time{})
			}
			laneEnds[lane] = s.Start.Add(s.Duration)

			args := make(map[string]string, len(s.Attrs)+3)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["span_id"] = strconv.FormatUint(s.ID, 10)
			if s.ParentID != 0 {
				args["parent_id"] = strconv.FormatUint(s.ParentID, 10)
			}
			if s.TraceID != "" {
				args["trace_id"] = s.TraceID
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  "span",
				Ph:   "X",
				TS:   s.Start.Sub(epoch).Microseconds(),
				Dur:  s.Duration.Microseconds(),
				PID:  p.PID,
				TID:  lane + 1,
				Args: args,
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
