//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU time
// from getrusage(RUSAGE_SELF). Monotonic, so snapshot deltas are safe.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return timevalDuration(ru.Utime) + timevalDuration(ru.Stime)
}

func timevalDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
