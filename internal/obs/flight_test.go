package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderKeepsEverythingUnsampled(t *testing.T) {
	var sink bytes.Buffer
	fr := NewFlightRecorder(128, 1, &sink)
	for i := 0; i < 10; i++ {
		fr.RecordVisit(VisitEvent{Site: fmt.Sprintf("s%d.com", i), OK: i%2 == 0})
	}
	if got := len(fr.Events()); got != 10 {
		t.Fatalf("kept %d events, want 10", got)
	}
	seen, kept, dropped := fr.Stats()
	if seen != 10 || kept != 10 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 10/10/0", seen, kept, dropped)
	}
	// The sink received one valid JSON object per line, in order.
	sc := bufio.NewScanner(&sink)
	lines := 0
	for sc.Scan() {
		var ev VisitEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if want := fmt.Sprintf("s%d.com", lines); ev.Site != want {
			t.Fatalf("line %d: site %q, want %q", lines+1, ev.Site, want)
		}
		lines++
	}
	if lines != 10 {
		t.Fatalf("sink has %d lines, want 10", lines)
	}
}

func TestFlightRecorderSamplingKeepsFailures(t *testing.T) {
	fr := NewFlightRecorder(1024, 10, nil)
	for i := 0; i < 100; i++ {
		fr.RecordVisit(VisitEvent{Site: "ok.com", OK: true})
	}
	for i := 0; i < 7; i++ {
		fr.RecordVisit(VisitEvent{Site: "down.com", OK: false, FailClass: "http-5xx"})
	}
	events := fr.Events()
	okN, failN := 0, 0
	for _, ev := range events {
		if ev.OK {
			okN++
		} else {
			failN++
		}
	}
	if failN != 7 {
		t.Errorf("kept %d failures, want all 7", failN)
	}
	if okN != 10 {
		t.Errorf("kept %d successes of 100 at 1-in-10, want 10", okN)
	}
	seen, kept, dropped := fr.Stats()
	if seen != 107 || kept != 17 || dropped != 90 {
		t.Errorf("stats = %d/%d/%d, want 107/17/90", seen, kept, dropped)
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	fr := NewFlightRecorder(64, 1, nil)
	for i := 0; i < 200; i++ {
		fr.RecordVisit(VisitEvent{Site: fmt.Sprintf("s%d", i)})
	}
	events := fr.Events()
	if len(events) != 64 {
		t.Fatalf("ring kept %d, want 64", len(events))
	}
	if events[0].Site != "s136" || events[63].Site != "s199" {
		t.Fatalf("ring order wrong: first %q last %q", events[0].Site, events[63].Site)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if fr.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	fr.RecordVisit(VisitEvent{Site: "x"}) // must not panic
	if fr.Events() != nil || fr.Capacity() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	seen, kept, dropped := fr.Stats()
	if seen+kept+dropped != 0 {
		t.Fatal("nil recorder has stats")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	var sink bytes.Buffer
	fr := NewFlightRecorder(256, 2, &sink)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fr.RecordVisit(VisitEvent{Site: fmt.Sprintf("g%d-%d", g, i), OK: i%3 != 0})
			}
		}(g)
	}
	wg.Wait()
	// Every sink line must still be a valid standalone JSON object.
	sc := bufio.NewScanner(&sink)
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("interleaved NDJSON line: %q", sc.Text())
		}
	}
	seen, kept, dropped := fr.Stats()
	if seen != 800 || kept+dropped != seen {
		t.Fatalf("stats don't add up: seen=%d kept=%d dropped=%d", seen, kept, dropped)
	}
}

func TestFlightWriteNDJSON(t *testing.T) {
	fr := NewFlightRecorder(64, 1, nil)
	fr.RecordVisit(VisitEvent{Site: "a.com", OK: true, Requests: 3})
	fr.RecordVisit(VisitEvent{Site: "b.com", FailClass: "timeout"})
	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[1], `"fail_class":"timeout"`) {
		t.Fatalf("failure event lost detail: %s", lines[1])
	}
}

// TestDisabledRecorderAllocationFree pins the acceptance bar for the
// disabled path: a nil recorder's RecordVisit must not allocate, so a
// study without flight recording pays nothing per visit.
func TestDisabledRecorderAllocationFree(t *testing.T) {
	var fr *FlightRecorder
	ev := VisitEvent{Site: "x.com", OK: true, Requests: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		fr.RecordVisit(ev)
	})
	if allocs != 0 {
		t.Fatalf("disabled RecordVisit allocates %.1f times per call, want 0", allocs)
	}
	if fr.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
}
