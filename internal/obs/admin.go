package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"
)

// Route is one extra admin endpoint: AdminHandler registers extras ahead
// of its defaults, so a route may both add a new path and shadow a
// built-in one.
type Route struct {
	Path    string
	Handler http.HandlerFunc
}

// AdminHandler serves the observability surface:
//
//	/metrics       Prometheus text exposition of reg
//	/spans         JSON dump of the tracer's recent spans (?name= filters
//	               by substring)
//	/trace         the span ring as Chrome trace-event JSON, loadable in
//	               Perfetto or chrome://tracing
//	/flight        the flight recorder's recent visit events as NDJSON
//	/healthz       liveness probe
//	/debug/pprof/  the standard net/http/pprof handlers
//	/              a tiny index linking the above
//
// reg, tr and fr may be nil; the corresponding endpoints then serve empty
// bodies.
//
// Extra routes are registered first and shadow the defaults: a shard
// coordinator overrides /metrics with the federated fleet exposition and
// /trace with the merged multi-process export, and adds /fleet.
func AdminHandler(reg *Registry, tr *Tracer, fr *FlightRecorder, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	claimed := make(map[string]bool, len(extra))
	var extraPaths []string
	for _, e := range extra {
		if e.Path == "" || e.Handler == nil || claimed[e.Path] {
			continue
		}
		claimed[e.Path] = true
		extraPaths = append(extraPaths, e.Path)
		mux.HandleFunc(e.Path, e.Handler)
	}
	handle := func(path string, h http.HandlerFunc) {
		if !claimed[path] {
			mux.HandleFunc(path, h)
		}
	}
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteExposition(w)
	})
	handle("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := tr.Recent()
		if name := r.URL.Query().Get("name"); name != "" {
			filtered := spans[:0:0]
			for _, s := range spans {
				if strings.Contains(s.Name, name) {
					filtered = append(filtered, s)
				}
			}
			spans = filtered
		}
		json.NewEncoder(w).Encode(struct {
			Capacity int          `json:"capacity"`
			Count    int          `json:"count"`
			Spans    []SpanRecord `json:"spans"`
		}{tr.Capacity(), len(spans), spans})
	})
	handle("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="study-trace.json"`)
		WriteChromeTrace(w, tr.Recent())
	})
	handle("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		seen, kept, dropped := fr.Stats()
		w.Header().Set("X-Flight-Seen", fmt.Sprint(seen))
		w.Header().Set("X-Flight-Kept", fmt.Sprint(kept))
		w.Header().Set("X-Flight-Sampled-Out", fmt.Sprint(dropped))
		fr.WriteNDJSON(w)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		// Runtime health summary, mirroring the study_runtime_* gauges, so
		// a probe sees liveness and saturation in one request.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(w, "goroutines %d\nheap_alloc_bytes %d\nheap_objects %d\ngc_cycles %d\n",
			runtime.NumGoroutine(), ms.HeapAlloc, ms.HeapObjects, ms.NumGC)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>pornweb observability</h1><ul>`+
			`<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>`+
			`<li><a href="/spans">/spans</a> — recent stage spans (JSON, ?name= filters)</li>`+
			`<li><a href="/trace">/trace</a> — span ring as Chrome trace (Perfetto)</li>`+
			`<li><a href="/flight">/flight</a> — recent visit events (NDJSON)</li>`+
			`<li><a href="/healthz">/healthz</a> — liveness</li>`+
			`<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>`)
		for _, p := range extraPaths {
			switch p {
			case "/metrics", "/spans", "/trace", "/flight", "/healthz":
				continue // shadowed defaults are already listed
			}
			fmt.Fprintf(w, `<li><a href="%s">%s</a></li>`, p, p)
		}
		fmt.Fprint(w, `</ul></body></html>`)
	})
	return mux
}

// AdminServer is a started admin listener.
type AdminServer struct {
	ln     net.Listener
	srv    *http.Server
	poller *RuntimePoller
}

// ServeAdmin binds addr (host:port; port 0 picks a free one) and serves
// the admin handler until Close. When reg is non-nil it also starts a
// runtime health poller feeding the study_runtime_* metrics, so every
// binary that exposes /metrics reports process health for free.
func ServeAdmin(addr string, reg *Registry, tr *Tracer, fr *FlightRecorder, extra ...Route) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	a := &AdminServer{
		ln:  ln,
		srv: &http.Server{Handler: AdminHandler(reg, tr, fr, extra...), ReadHeaderTimeout: 10 * time.Second},
	}
	if reg != nil {
		a.poller = StartRuntimePoller(reg, time.Second)
	}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound address (resolves port 0).
func (a *AdminServer) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the runtime poller and the listener.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	a.poller.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}
