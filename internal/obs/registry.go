package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default bucket boundaries, in seconds.
var (
	// LatencyBuckets suits sub-second request round-trips.
	LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// StageBuckets suits pipeline stages that run from milliseconds to
	// minutes (a paper-scale crawl stage takes over a minute).
	StageBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1,
		2.5, 5, 10, 30, 60, 120, 300, 600}
	// WaitBuckets suits scheduler queue waits: often microseconds when a
	// worker is free, but up to minutes when a stage sits behind a
	// paper-scale crawl for its worker slot.
	WaitBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1,
		0.5, 1, 5, 15, 60, 300}
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bucket boundaries are upper
// bounds; observations above the last boundary land in the implicit +Inf
// bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-added
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// mergeDelta folds another histogram's bucket-count, sum and count
// deltas into this one — the commutative federation merge. Buckets past
// this histogram's own are clipped (a bounds mismatch between processes
// loses resolution, never counts: the total still lands via count).
func (h *Histogram) mergeDelta(buckets []uint64, sum float64, count uint64) {
	if h == nil {
		return
	}
	for i, n := range buckets {
		if i >= len(h.counts) {
			break
		}
		h.counts[i].Add(n)
	}
	h.count.Add(count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing the target rank — the same estimate
// Prometheus's histogram_quantile computes. Observations in the +Inf
// bucket clamp to the highest finite boundary.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one (name, labelset) time series.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry is a thread-safe collection of named metrics. Instruments are
// get-or-create: asking twice for the same name and label set returns the
// same instrument, so hot paths should resolve instruments once and keep
// the pointer. A nil *Registry hands out nil instruments whose methods
// no-op.
type Registry struct {
	mu sync.Mutex
	// families, and every family's series map hanging off it, are
	// guarded by mu. Instrument structs themselves (Counter, Gauge,
	// Histogram) are atomic and lock-free once handed out.
	// guarded by mu
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Describe attaches HELP text to a metric name (exposed on /metrics).
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: map[string]*series{}}
	}
}

// lookup get-or-creates the series for (name, labels) and enforces that a
// name keeps one kind for its lifetime.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *series {
	s, ok := r.lookupRendered(name, kind, bounds, renderLabels(labels))
	if !ok {
		panic(fmt.Sprintf("obs: metric %q registered as two kinds", name))
	}
	return s
}

// lookupRendered is lookup keyed on a pre-rendered label block — the
// federation merge path splices worker/shard labels into blocks it
// already holds in rendered form. Returns ok=false instead of panicking
// on a kind conflict, so merging an untrusted snapshot can skip the
// offending point rather than crash the coordinator.
func (r *Registry) lookupRendered(name string, kind metricKind, bounds []float64, ls string) (*series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
	} else if len(f.series) == 0 && f.kind != kind {
		// Described-before-use family: adopt the first real kind.
		f.kind = kind
		f.bounds = bounds
	} else if f.kind != kind {
		return nil, false
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			b := f.bounds
			if len(b) == 0 {
				b = LatencyBuckets
			}
			s.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		}
		f.series[ls] = s
	}
	return s, true
}

// Counter returns the counter for name and the given label pairs
// (alternating key, value).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge for name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram for name and label pairs. The bucket
// boundaries of the first call for a name win; nil buckets default to
// LatencyBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, buckets, labels).h
}

// renderLabels renders alternating key/value pairs as a canonical
// (key-sorted) Prometheus label block, or "" for no labels.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list, want alternating key, value")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// withExtraLabel splices one more label into a pre-rendered label block.
func withExtraLabel(ls, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if ls == "" {
		return "{" + pair + "}"
	}
	return ls[:len(ls)-1] + "," + pair + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition renders every metric in Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name and
// label set. Histograms emit the conventional _bucket/_sum/_count series
// plus a comment line with p50/p95/p99 estimates for human readers.
func (r *Registry) WriteExposition(w io.Writer) error {
	if r == nil {
		return nil
	}
	// The whole walk holds r.mu: the family list AND each family's
	// series map are guarded by it, and lookupRendered inserts new
	// series concurrently. Rendering goes to a local builder so the
	// caller's writer is never fed under the lock.
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if len(f.series) == 0 {
			continue // described but never used
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", f.name)
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", f.name)
		}
		keys := make([]string, 0, len(f.series))
		for ls := range f.series {
			keys = append(keys, ls)
		}
		sort.Strings(keys)
		for _, ls := range keys {
			s := f.series[ls]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(s.g.Value()))
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := strconv.FormatFloat(bound, 'g', -1, 64)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withExtraLabel(ls, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withExtraLabel(ls, "le", "+Inf"), s.h.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatValue(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.h.Count())
				fmt.Fprintf(&b, "# %s%s p50=%s p95=%s p99=%s\n", f.name, ls,
					formatValue(s.h.Quantile(0.50)),
					formatValue(s.h.Quantile(0.95)),
					formatValue(s.h.Quantile(0.99)))
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}
