package obs

import (
	"sort"
	"strings"
)

// Metric federation: the telemetry return path of a sharded crawl.
// Workers cannot be scraped reliably mid-run (they are ephemeral
// loopback processes), so instead of pull-based federation each worker
// snapshots its registry, diffs it against the snapshot taken at the
// previous shard boundary, and ships the delta inside the shard Result.
// The coordinator folds deltas into its own registry under worker/shard
// labels. Counter and histogram deltas add, so the merge is commutative
// and idempotent-per-result — the same order-independence the data
// Merger enforces for entries — and a lost snapshot loses visibility,
// never correctness.

// SnapshotPoint is one series' state inside a Snapshot. Exactly one
// value group is meaningful per kind: Count for counters; Value for
// gauges; Bounds/Buckets/Value(sum)/Count for histograms.
type SnapshotPoint struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Labels is the series' canonical pre-rendered label block
	// ({k="v",...}) or "" for the unlabeled series.
	Labels string `json:"labels,omitempty"`
	// Count is the counter value, or the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Value is the gauge value, or the histogram sum.
	Value float64 `json:"value,omitempty"`
	// Bounds are the histogram's bucket upper bounds; Buckets the
	// per-bucket (non-cumulative) counts, len(Bounds)+1 with the +Inf
	// bucket last.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Snapshot is a registry's full state at one instant, deterministically
// ordered by (name, labels) so equal registries snapshot to equal bytes.
type Snapshot struct {
	Points []SnapshotPoint `json:"points"`
}

func kindString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Snapshot captures every live series in the registry. Nil-safe (a nil
// registry snapshots to an empty Snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	// The walk holds r.mu throughout: each family's series map is
	// guarded by it and MergeSnapshot/lookupRendered insert new series
	// concurrently. Only atomics are read per series, so the critical
	// section stays cheap.
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		keys := make([]string, 0, len(f.series))
		for ls := range f.series {
			keys = append(keys, ls)
		}
		sort.Strings(keys)
		for _, ls := range keys {
			se := f.series[ls]
			p := SnapshotPoint{Name: f.name, Kind: kindString(f.kind), Labels: ls}
			switch f.kind {
			case kindCounter:
				p.Count = se.c.Value()
			case kindGauge:
				p.Value = se.g.Value()
			case kindHistogram:
				p.Bounds = append([]float64(nil), se.h.bounds...)
				p.Buckets = make([]uint64, len(se.h.counts))
				for i := range se.h.counts {
					p.Buckets[i] = se.h.counts[i].Load()
				}
				p.Value = se.h.Sum()
				p.Count = se.h.Count()
			}
			s.Points = append(s.Points, p)
		}
	}
	return s
}

// DeltaFrom subtracts an earlier snapshot, returning only what changed
// since: counter and histogram points carry the increment, gauges their
// current value. Unchanged points are dropped, so the delta a worker
// ships per shard stays proportional to that shard's activity. A nil or
// empty prev returns the whole snapshot.
func (s *Snapshot) DeltaFrom(prev *Snapshot) *Snapshot {
	if s == nil {
		return &Snapshot{}
	}
	idx := map[string]SnapshotPoint{}
	if prev != nil {
		for _, p := range prev.Points {
			idx[p.Name+"\x00"+p.Labels] = p
		}
	}
	out := &Snapshot{}
	for _, p := range s.Points {
		q, seen := idx[p.Name+"\x00"+p.Labels]
		if seen && q.Kind != p.Kind {
			seen = false // a name changed kinds between snapshots: treat as new
		}
		switch p.Kind {
		case "counter":
			if seen {
				if p.Count <= q.Count {
					continue // unchanged (or a restarted source; nothing safe to add)
				}
				p.Count -= q.Count
			}
			if p.Count == 0 {
				continue
			}
		case "gauge":
			if seen && p.Value == q.Value {
				continue
			}
		case "histogram":
			if seen {
				if p.Count <= q.Count {
					continue
				}
				p.Count -= q.Count
				p.Value -= q.Value
				buckets := append([]uint64(nil), p.Buckets...)
				for i := range buckets {
					if i < len(q.Buckets) && buckets[i] >= q.Buckets[i] {
						buckets[i] -= q.Buckets[i]
					}
				}
				p.Buckets = buckets
			}
			if p.Count == 0 {
				continue
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// validPointLabels accepts only canonical label blocks — "" or a
// {...}-delimited block — so a corrupt wire snapshot cannot smuggle
// malformed series keys into the exposition.
func validPointLabels(ls string) bool {
	return ls == "" || (strings.HasPrefix(ls, "{") && strings.HasSuffix(ls, "}"))
}

// hasLabelKey reports whether a canonical label block already binds the
// given key.
func hasLabelKey(ls, key string) bool {
	return strings.HasPrefix(ls, "{"+key+`="`) || strings.Contains(ls, ","+key+`="`)
}

// MergeSnapshot folds a (delta) snapshot into the registry, splicing the
// given extra label pairs (alternating key, value — e.g. "worker", name,
// "shard", "3") into every point. Counters and histograms add; gauges
// set. The merge is commutative across snapshots from distinct sources,
// so fleet results can arrive in any order. Points that collide with an
// existing family of a different kind, or carry malformed labels, are
// skipped — a hostile snapshot degrades, it cannot crash the registry.
// Nil-safe.
func (r *Registry) MergeSnapshot(s *Snapshot, extraLabels ...string) {
	if r == nil || s == nil {
		return
	}
	if len(extraLabels)%2 != 0 {
		panic("obs: odd label list, want alternating key, value")
	}
points:
	for _, p := range s.Points {
		if p.Name == "" || !validPointLabels(p.Labels) {
			continue
		}
		ls := p.Labels
		for i := 0; i < len(extraLabels); i += 2 {
			// A point already bound to one of the extra keys is this
			// merger's own output echoed back (a worker sharing the
			// coordinator's registry snapshots the federated series too);
			// splicing the key a second time would mint a new series per
			// round and grow the registry without bound.
			if hasLabelKey(ls, extraLabels[i]) {
				continue points
			}
			ls = withExtraLabel(ls, extraLabels[i], extraLabels[i+1])
		}
		switch p.Kind {
		case "counter":
			se, ok := r.lookupRendered(p.Name, kindCounter, nil, ls)
			if ok {
				se.c.Add(p.Count)
			}
		case "gauge":
			se, ok := r.lookupRendered(p.Name, kindGauge, nil, ls)
			if ok {
				se.g.Set(p.Value)
			}
		case "histogram":
			se, ok := r.lookupRendered(p.Name, kindHistogram, p.Bounds, ls)
			if ok {
				se.h.mergeDelta(p.Buckets, p.Value, p.Count)
			}
		}
	}
}
