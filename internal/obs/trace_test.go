package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteChromeTraceLanesAndTimes(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	spans := []SpanRecord{
		// Two overlapping spans must land in different lanes; a third that
		// starts after the first ends should reuse lane 1.
		{ID: 1, Name: "stage-a", Start: base, Duration: 100 * time.Millisecond},
		{ID: 2, Name: "stage-b", Start: base.Add(50 * time.Millisecond), Duration: 100 * time.Millisecond, ParentID: 1,
			Attrs: map[string]string{"country": "ES"}},
		{ID: 3, Name: "stage-c", Start: base.Add(120 * time.Millisecond), Duration: 10 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	a, b, c := doc.TraceEvents[byName["stage-a"]], doc.TraceEvents[byName["stage-b"]], doc.TraceEvents[byName["stage-c"]]
	if a.TS != 0 || a.Dur != 100_000 {
		t.Errorf("stage-a ts/dur = %d/%d, want 0/100000", a.TS, a.Dur)
	}
	if b.TS != 50_000 {
		t.Errorf("stage-b ts = %d, want 50000", b.TS)
	}
	if a.TID == b.TID {
		t.Errorf("overlapping spans share lane %d", a.TID)
	}
	if c.TID != a.TID {
		t.Errorf("stage-c lane %d, want reuse of stage-a lane %d", c.TID, a.TID)
	}
	if b.Args["country"] != "ES" || b.Args["parent_id"] != "1" || b.Args["span_id"] != "2" {
		t.Errorf("stage-b args = %v", b.Args)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace invalid: %s", buf.String())
	}
}
