package obs

import (
	"context"
	"testing"
)

// The disabled (nil-instrument) path must stay O(ns) per operation so
// instrumentation can be unconditional in hot paths.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkSpan(b *testing.B) {
	tr := NewTracer(1024)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func benchVisit(i int) VisitEvent {
	return VisitEvent{
		Site: "example.com", Rank: i % 1000, Corpus: "porn",
		Stage: "crawl/porn-ES", Country: "ES", OK: true,
		Requests: 40, ThirdParty: 25, Cookies: 12, Bytes: 1 << 18,
		WallMS: 420, SpanID: uint64(i),
	}
}

func BenchmarkFlightVisitUnsampled(b *testing.B) {
	fr := NewFlightRecorder(4096, 1, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.RecordVisit(benchVisit(i))
	}
}

func BenchmarkFlightVisitSampled(b *testing.B) {
	fr := NewFlightRecorder(4096, 100, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.RecordVisit(benchVisit(i))
	}
}

func BenchmarkFlightVisitDisabled(b *testing.B) {
	var fr *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fr.Enabled() {
			fr.RecordVisit(benchVisit(i))
		}
	}
}

func BenchmarkLoggerSquelched(b *testing.B) {
	l := NewLogger(nil, LevelInfo)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debugf("dropped %d", i)
	}
}
