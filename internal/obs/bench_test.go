package obs

import (
	"context"
	"testing"
)

// The disabled (nil-instrument) path must stay O(ns) per operation so
// instrumentation can be unconditional in hot paths.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkSpan(b *testing.B) {
	tr := NewTracer(1024)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkLoggerSquelched(b *testing.B) {
	l := NewLogger(nil, LevelInfo)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debugf("dropped %d", i)
	}
}
