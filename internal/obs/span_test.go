package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(64)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "study/run")
	ctx2, crawl := StartSpan(ctx1, "crawl/ES")
	crawl.SetAttr("country", "ES")
	_, visit := StartSpan(ctx2, "visit")
	visit.End()
	crawl.End()
	// A sibling under root, opened after crawl closed.
	_, analyze := StartSpan(ctx1, "analysis/parties")
	analyze.End()
	root.End()

	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, v, a := byName["study/run"], byName["crawl/ES"], byName["visit"], byName["analysis/parties"]
	if r.ParentID != 0 {
		t.Errorf("root has parent %d", r.ParentID)
	}
	if c.ParentID != r.ID || a.ParentID != r.ID {
		t.Errorf("crawl/analysis not parented to root: %d/%d vs %d", c.ParentID, a.ParentID, r.ID)
	}
	if v.ParentID != c.ID {
		t.Errorf("visit parent = %d, want crawl %d", v.ParentID, c.ID)
	}
	if c.Attrs["country"] != "ES" {
		t.Errorf("attrs lost: %+v", c.Attrs)
	}
	if r.Duration <= 0 {
		t.Errorf("root duration %v", r.Duration)
	}
}

func TestSpanNoTracerInContext(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("want nil span without a tracer")
	}
	s.SetAttr("k", "v") // must not panic
	if d := s.End(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	if ctx == nil {
		t.Fatal("context dropped")
	}
}

func TestTracerStartInjectsTracer(t *testing.T) {
	tr := NewTracer(16)
	ctx, parent := tr.Start(context.Background(), "parent")
	// The returned context should let package-level StartSpan find tr.
	_, child := StartSpan(ctx, "child")
	child.End()
	parent.End()
	spans := tr.Recent()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTracer(16)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	spans := tr.Recent()
	if len(spans) != 16 {
		t.Fatalf("ring kept %d, want capacity 16", len(spans))
	}
	// Oldest-first ordering: IDs strictly increase.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("ring order broken at %d: %d after %d", i, spans[i].ID, spans[i-1].ID)
		}
	}
	if spans[len(spans)-1].ID != 40 {
		t.Fatalf("newest span ID = %d, want 40", spans[len(spans)-1].ID)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := WithTracer(context.Background(), tr)
			for i := 0; i < 200; i++ {
				c2, s := StartSpan(ctx, "outer")
				_, in := StartSpan(c2, "inner")
				in.SetAttr("i", "x")
				in.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 128 {
		t.Fatalf("ring has %d, want full 128", got)
	}
}

// Regression for a data race: End publishes the attrs map into the ring
// buffer, so a SetAttr arriving after End must not mutate the map a
// concurrent Recent() reader is decoding. Run with -race.
func TestSpanSetAttrAfterEndRace(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 50; i++ {
		_, s := tr.Start(context.Background(), "racy")
		s.SetAttr("pre", "end")

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.End()
			s.SetAttr("post", "end") // must be a no-op
		}()
		go func() {
			defer wg.Done()
			for _, rec := range tr.Recent() {
				if _, err := json.Marshal(rec.Attrs); err != nil {
					t.Error(err)
				}
			}
		}()
		wg.Wait()

		recs := tr.Recent()
		last := recs[len(recs)-1]
		if last.Attrs["pre"] != "end" {
			t.Fatalf("pre-End attr lost: %+v", last.Attrs)
		}
		if _, ok := last.Attrs["post"]; ok {
			t.Fatalf("post-End SetAttr reached the published record: %+v", last.Attrs)
		}
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	s.End()
	if tr.Recent() != nil || tr.Capacity() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if ctx == nil {
		t.Fatal("context dropped")
	}
}
