package obs

import (
	"log"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe strings.Builder for log output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLoggerLevelsAndComponent(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo).WithComponent("crawler")
	l.Debugf("hidden %d", 1)
	l.Infof("visible %d", 2)
	l.Errorf("broken %s", "x")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line leaked at info level")
	}
	if !strings.Contains(out, "INFO  [crawler] visible 2") {
		t.Errorf("missing info line in %q", out)
	}
	if !strings.Contains(out, "ERROR [crawler] broken x") {
		t.Errorf("missing error line in %q", out)
	}
}

func TestLoggerEvent(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelDebug)
	l.Event(LevelWarn, "handshake failed", "host", "x.com", "err", "no tls")
	if !strings.Contains(buf.String(), "handshake failed host=x.com err=no tls") {
		t.Errorf("bad event rendering: %q", buf.String())
	}
}

func TestLoggerSinkBridge(t *testing.T) {
	var got []string
	legacy := func(format string, args ...any) {
		got = append(got, strings.TrimSpace(strings.ReplaceAll(format, "%s", args[0].(string))))
	}
	l := NewLogger(nil, LevelInfo).WithSink(legacy)
	l.Infof("crawl done: %d sites", 42)
	if len(got) != 1 || !strings.Contains(got[0], "crawl done: 42 sites") {
		t.Fatalf("sink got %v", got)
	}
}

func TestLoggerCounters(t *testing.T) {
	reg := NewRegistry()
	l := NewLogger(nil, LevelInfo).CountIn(reg)
	l.Infof("a")
	l.Warnf("b")
	l.Warnf("c")
	l.Debugf("below threshold, not counted")
	if v := reg.Counter("log_lines_total", "level", "info").Value(); v != 1 {
		t.Errorf("info lines = %d, want 1", v)
	}
	if v := reg.Counter("log_lines_total", "level", "warn").Value(); v != 2 {
		t.Errorf("warn lines = %d, want 2", v)
	}
	if v := reg.Counter("log_lines_total", "level", "debug").Value(); v != 0 {
		t.Errorf("debug lines = %d, want 0", v)
	}
}

func TestStdWriterCountsSquelchedLines(t *testing.T) {
	reg := NewRegistry()
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo) // debug lines not printed
	c := reg.Counter("errors_total")
	std := log.New(l.StdWriter(LevelDebug, c), "", 0)
	std.Print("tls handshake error: no cert")
	std.Print("another")
	if c.Value() != 2 {
		t.Fatalf("counted %d error-log lines, want 2", c.Value())
	}
	if buf.String() != "" {
		t.Fatalf("debug-level lines printed at info threshold: %q", buf.String())
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Infof("x")
	l.Event(LevelError, "y", "k", "v")
	l = l.WithComponent("c").WithSink(func(string, ...any) {}).CountIn(NewRegistry())
	if l != nil {
		t.Fatal("nil logger must stay nil through With*")
	}
	w := (*Logger)(nil).StdWriter(LevelInfo, nil)
	if _, err := w.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf syncBuffer
	reg := NewRegistry()
	l := NewLogger(&buf, LevelInfo).CountIn(reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Infof("g%d line %d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if v := reg.Counter("log_lines_total", "level", "info").Value(); v != 800 {
		t.Fatalf("counted %d lines, want 800", v)
	}
	if got := strings.Count(buf.String(), "\n"); got != 800 {
		t.Fatalf("wrote %d lines, want 800", got)
	}
}
