package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// VisitEvent is one wide event of the per-visit flight recorder: the
// complete structured story of a single page visit, the way OpenWPM
// treats per-visit capture as the primary artifact of a measurement
// study. One event carries everything an analyst needs to explain why a
// visit contributed (or failed to contribute) to a figure — no joining
// across log streams required.
type VisitEvent struct {
	// Site is the visited landing host.
	Site string `json:"site"`
	// Rank is the site's base toplist rank (0 when unknown).
	Rank int `json:"rank,omitempty"`
	// Corpus labels which corpus the visit fed ("porn", "reference").
	Corpus string `json:"corpus,omitempty"`
	// Stage is the pipeline stage that issued the visit
	// (e.g. "crawl/porn-ES").
	Stage string `json:"stage,omitempty"`
	// Country is the vantage country.
	Country string `json:"country,omitempty"`
	// Interactive marks Selenium-analog visits.
	Interactive bool `json:"interactive,omitempty"`
	OK          bool `json:"ok"`
	// FailClass is the failure-taxonomy class for failed visits.
	FailClass string `json:"fail_class,omitempty"`
	// Attempts is the highest retry attempt any request of the visit
	// needed (0 without a retry policy).
	Attempts int `json:"attempts,omitempty"`
	// Requests counts logged requests the visit issued; ThirdParty those
	// aimed at hosts other than the site itself.
	Requests   int `json:"requests"`
	ThirdParty int `json:"third_party"`
	// Cookies counts Set-Cookie headers received during the visit.
	Cookies int `json:"cookies"`
	// Bytes is the total response-body volume read.
	Bytes int64 `json:"bytes"`
	// WallMS is the full visit wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SpanID links the event to the visit's span in the tracer ring (and
	// the /trace export), 0 when tracing is off.
	SpanID uint64 `json:"span_id,omitempty"`
	// Worker and Shard identify which fleet member performed the visit
	// and under which shard assignment; the coordinator stamps them when
	// it folds a worker's flight events into its own recorder. Empty/0
	// for unsharded (in-process) visits.
	Worker string `json:"worker,omitempty"`
	Shard  int    `json:"shard,omitempty"`
}

// FlightRecorder is a bounded wide-event sink: every page visit emits one
// VisitEvent, head-sampled (the keep/drop decision is made on arrival,
// never retroactively) with failures always kept — exactly the visits an
// incident needs are the ones sampling must not lose. Kept events land in
// a fixed-capacity ring buffer (newest win) and, when a sink writer is
// configured, stream out as NDJSON lines.
//
// A nil *FlightRecorder is a valid disabled recorder: RecordVisit on nil
// is a no-op, so call sites need no guards and the disabled path costs a
// nil check — callers that gather event fields should still gate that
// work on Enabled().
type FlightRecorder struct {
	sampleN uint64 // keep 1 in sampleN successful visits; 1 keeps all

	seen    atomic.Uint64 // all events offered
	kept    atomic.Uint64 // events that passed sampling
	dropped atomic.Uint64 // successful events sampled away

	// droppedCtr, when wired by CountIn, mirrors the dropped count as a
	// metric so sampling loss shows up on /metrics, not just in runinfo.
	droppedCtr *Counter

	mu   sync.Mutex
	w    io.Writer // optional NDJSON stream
	buf  []VisitEvent
	next int
	full bool
}

// NewFlightRecorder returns a recorder keeping the most recent capacity
// events (minimum 64). sampleN <= 1 keeps every event; otherwise one in
// sampleN successful visits is kept (failures are always kept). sink may
// be nil; when set, every kept event is written to it as one NDJSON line.
func NewFlightRecorder(capacity, sampleN int, sink io.Writer) *FlightRecorder {
	if capacity < 64 {
		capacity = 64
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &FlightRecorder{
		sampleN: uint64(sampleN),
		w:       sink,
		buf:     make([]VisitEvent, capacity),
	}
}

// Enabled reports whether events are being collected; use it to skip
// event-field gathering entirely when the recorder is nil.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// CountIn registers the recorder's sampling-loss counter with reg and
// returns the recorder: flight_events_dropped_total counts successful
// visits head-sampling discarded, so the gap between visits performed
// and events kept is a queryable metric. Nil-safe on both sides.
func (f *FlightRecorder) CountIn(reg *Registry) *FlightRecorder {
	if f == nil || reg == nil {
		return f
	}
	reg.Describe("flight_events_dropped_total", "successful visit events discarded by flight-recorder head sampling")
	f.droppedCtr = reg.Counter("flight_events_dropped_total")
	return f
}

// RecordVisit offers one event to the recorder. Nil-safe.
func (f *FlightRecorder) RecordVisit(ev VisitEvent) {
	if f == nil {
		return
	}
	n := f.seen.Add(1)
	// Head sampling: successful visits keep every sampleN-th arrival;
	// failures bypass sampling entirely.
	if ev.OK && f.sampleN > 1 && n%f.sampleN != 1 {
		f.dropped.Add(1)
		f.droppedCtr.Inc()
		return
	}
	f.kept.Add(1)
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	if f.w != nil {
		// Encode and write under the lock so concurrent visits cannot
		// interleave NDJSON lines.
		if line, err := json.Marshal(ev); err == nil {
			f.w.Write(append(line, '\n'))
		}
	}
	f.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (f *FlightRecorder) Events() []VisitEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		out := make([]VisitEvent, f.next)
		copy(out, f.buf[:f.next])
		return out
	}
	out := make([]VisitEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// WriteNDJSON dumps the buffered events to w, one JSON object per line.
func (f *FlightRecorder) WriteNDJSON(w io.Writer) error {
	for _, ev := range f.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns how many events were offered, kept and sampled away.
func (f *FlightRecorder) Stats() (seen, kept, dropped uint64) {
	if f == nil {
		return 0, 0, 0
	}
	return f.seen.Load(), f.kept.Load(), f.dropped.Load()
}

// Capacity returns the ring-buffer size (0 for a nil recorder).
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}
