package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimePollerSamples(t *testing.T) {
	reg := NewRegistry()
	p := StartRuntimePoller(reg, 5*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent

	var buf bytes.Buffer
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, name := range []string{
		"study_runtime_goroutines",
		"study_runtime_heap_alloc_bytes",
		"study_runtime_heap_objects",
		"study_runtime_next_gc_bytes",
		"study_runtime_alloc_bytes_total",
	} {
		if !strings.Contains(exp, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if g := reg.Gauge("study_runtime_goroutines").Value(); g < 1 {
		t.Errorf("goroutine gauge %v, want >= 1", g)
	}
}

func TestRuntimePollerNilRegistry(t *testing.T) {
	p := StartRuntimePoller(nil, time.Millisecond)
	p.Sample()
	p.Stop()
}

func TestRuntimePollerObservesGC(t *testing.T) {
	reg := NewRegistry()
	p := StartRuntimePoller(reg, time.Hour) // sample manually
	defer p.Stop()
	runtime.GC()
	runtime.GC()
	p.Sample()
	if c := reg.Counter("study_runtime_gc_cycles_total").Value(); c == 0 {
		t.Error("gc cycle counter still zero after two forced GCs")
	}
	if n := reg.Histogram("study_runtime_gc_pause_seconds", GCPauseBuckets).Count(); n == 0 {
		t.Error("gc pause histogram empty after two forced GCs")
	}
}

func TestTakeResourceSnapshotMonotonic(t *testing.T) {
	a := TakeResourceSnapshot()
	// Allocate something measurable between the snapshots.
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	b := TakeResourceSnapshot()
	if b.TotalAlloc <= a.TotalAlloc {
		t.Errorf("TotalAlloc not monotonic: %d -> %d", a.TotalAlloc, b.TotalAlloc)
	}
	if b.CPU < a.CPU {
		t.Errorf("CPU went backwards: %v -> %v", a.CPU, b.CPU)
	}
	if a.Goroutines < 1 || b.Goroutines < 1 {
		t.Errorf("goroutine counts %d, %d, want >= 1", a.Goroutines, b.Goroutines)
	}
}

func TestRecordStageResources(t *testing.T) {
	reg := NewRegistry()
	start := ResourceSnapshot{CPU: time.Second, TotalAlloc: 1000, GCCycles: 3, Goroutines: 4}
	end := ResourceSnapshot{CPU: 3 * time.Second, TotalAlloc: 5000, GCCycles: 5, Goroutines: 9}
	reg.RecordStageResources("crawl/porn-ES", start, end)

	if v := reg.Gauge("study_stage_cpu_seconds", "stage", "crawl/porn-ES").Value(); v != 2 {
		t.Errorf("cpu seconds = %v, want 2", v)
	}
	if v := reg.Counter("study_stage_alloc_bytes_total", "stage", "crawl/porn-ES").Value(); v != 4000 {
		t.Errorf("alloc bytes = %d, want 4000", v)
	}
	if v := reg.Counter("study_stage_gc_cycles_total", "stage", "crawl/porn-ES").Value(); v != 2 {
		t.Errorf("gc cycles = %d, want 2", v)
	}
	if v := reg.Gauge("study_stage_goroutines_peak", "stage", "crawl/porn-ES").Value(); v != 9 {
		t.Errorf("goroutine peak = %v, want 9", v)
	}
	// A later, smaller boundary reading must not lower the peak.
	reg.RecordStageResources("crawl/porn-ES", ResourceSnapshot{Goroutines: 2}, ResourceSnapshot{Goroutines: 3})
	if v := reg.Gauge("study_stage_goroutines_peak", "stage", "crawl/porn-ES").Value(); v != 9 {
		t.Errorf("goroutine peak lowered to %v, want 9", v)
	}
	// Nil registry: all no-ops.
	var nilReg *Registry
	nilReg.RecordStageResources("x", start, end)
}

// TestExpositionDeterministicWithRuntimeMetrics pins the satellite
// guarantee: a populated registry — stage timings, stage resources and
// runtime health gauges together — renders byte-identically twice in a
// row once sampling has stopped.
func TestExpositionDeterministicWithRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	p := StartRuntimePoller(reg, time.Hour)
	p.Sample()
	p.Stop()
	for _, stage := range []string{"corpus", "crawl/porn-ES", "analysis/geo"} {
		reg.Histogram("study_stage_seconds", StageBuckets, "stage", stage).Observe(0.25)
		reg.RecordStageResources(stage,
			ResourceSnapshot{CPU: time.Second, TotalAlloc: 10, GCCycles: 1, Goroutines: 2},
			ResourceSnapshot{CPU: 2 * time.Second, TotalAlloc: 99, GCCycles: 2, Goroutines: 7})
	}
	var a, b bytes.Buffer
	if err := reg.WriteExposition(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
	if !strings.Contains(a.String(), `study_stage_cpu_seconds{stage="crawl/porn-ES"}`) {
		t.Error("stage cpu metric missing from exposition")
	}
}
