package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name to its Level (defaulting to info).
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is a leveled, structured logger. It supersedes the ad-hoc
// `func(format string, args ...any)` progress callback the study config
// used to carry: a legacy callback can be attached as a sink so existing
// consumers keep receiving lines, while the logger adds levels, component
// tags, per-level counters in a Registry, and an io.Writer adapter for
// libraries (net/http) that want a *log.Logger. A nil *Logger discards
// everything.
type Logger struct {
	mu        sync.Mutex
	out       io.Writer
	min       Level
	component string
	sink      func(format string, args ...any)
	lines     [4]*Counter // per-level emitted-line counters
}

// NewLogger writes lines at or above min to out (nil out discards).
func NewLogger(out io.Writer, min Level) *Logger {
	if out == nil {
		out = io.Discard
	}
	return &Logger{out: out, min: min}
}

// clone copies the logger's configuration (not its mutex).
func (l *Logger) clone() *Logger {
	return &Logger{out: l.out, min: l.min, component: l.component, sink: l.sink, lines: l.lines}
}

// WithComponent returns a logger tagging every line with a [component].
func (l *Logger) WithComponent(name string) *Logger {
	if l == nil {
		return nil
	}
	c := l.clone()
	c.component = name
	return c
}

// WithSink returns a logger that additionally forwards every emitted line
// to fn — the backward-compatibility bridge to the old Config.Log
// callback.
func (l *Logger) WithSink(fn func(format string, args ...any)) *Logger {
	if l == nil || fn == nil {
		return l
	}
	c := l.clone()
	c.sink = fn
	return c
}

// CountIn returns a logger whose emitted lines increment
// log_lines_total{level=...} in reg, so error rates are measurable, not
// just printed.
func (l *Logger) CountIn(reg *Registry) *Logger {
	if l == nil || reg == nil {
		return l
	}
	c := l.clone()
	for lv := LevelDebug; lv <= LevelError; lv++ {
		c.lines[lv] = reg.Counter("log_lines_total", "level", lv.String())
	}
	return c
}

// Enabled reports whether level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

func (l *Logger) emit(level Level, msg string) {
	if !l.Enabled(level) {
		return
	}
	l.lines[level].Inc()
	tag := ""
	if l.component != "" {
		tag = " [" + l.component + "]"
	}
	line := fmt.Sprintf("%s %-5s%s %s\n",
		time.Now().Format("2006-01-02T15:04:05.000"), strings.ToUpper(level.String()), tag, msg)
	l.mu.Lock()
	io.WriteString(l.out, line)
	l.mu.Unlock()
	if l.sink != nil {
		l.sink("%s", msg)
	}
}

// Event logs a structured message: a static msg followed by alternating
// key/value attribute pairs rendered as key=value.
func (l *Logger) Event(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	if len(kv)%2 != 0 {
		fmt.Fprintf(&b, " %v=?", kv[len(kv)-1])
	}
	l.emit(level, b.String())
}

// Debugf logs a formatted line at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs a formatted line at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs a formatted line at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs a formatted line at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.emit(level, fmt.Sprintf(format, args...))
}

// levelWriter adapts the logger to io.Writer for use as a *log.Logger
// backend; every Write becomes one logged line (plus an optional counter
// increment even when the level is squelched).
type levelWriter struct {
	l     *Logger
	level Level
	count *Counter
}

func (w levelWriter) Write(p []byte) (int, error) {
	w.count.Inc()
	w.l.logf(w.level, "%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// StdWriter returns an io.Writer that logs each written line at level and
// increments count (which may be nil) on every line regardless of level —
// the adapter net/http's ErrorLog needs so server-side errors are counted
// even when not printed.
func (l *Logger) StdWriter(level Level, count *Counter) io.Writer {
	return levelWriter{l: l, level: level, count: count}
}
