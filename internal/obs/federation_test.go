package obs

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// crawlishRegistry builds a registry shaped like a worker's: counters,
// a gauge and a histogram with label variety.
func crawlishRegistry() *Registry {
	r := NewRegistry()
	r.Counter("visits_total", "country", "ES").Add(3)
	r.Counter("visits_total", "country", "US").Add(5)
	r.Gauge("breakers_open").Set(2)
	r.Histogram("load_seconds", []float64{0.1, 1}, "country", "ES").Observe(0.05)
	r.Histogram("load_seconds", []float64{0.1, 1}, "country", "ES").Observe(0.5)
	return r
}

func TestSnapshotDeterministic(t *testing.T) {
	a := crawlishRegistry().Snapshot()
	b := crawlishRegistry().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("equal registries snapshot unequally:\n%+v\n%+v", a, b)
	}
	if len(a.Points) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(a.Points))
	}
	for i := 1; i < len(a.Points); i++ {
		p, q := a.Points[i-1], a.Points[i]
		if p.Name > q.Name || (p.Name == q.Name && p.Labels > q.Labels) {
			t.Errorf("snapshot unsorted at %d: %s%s after %s%s", i, q.Name, q.Labels, p.Name, p.Labels)
		}
	}
	var nilReg *Registry
	if s := nilReg.Snapshot(); len(s.Points) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestDeltaFrom(t *testing.T) {
	r := crawlishRegistry()
	before := r.Snapshot()

	r.Counter("visits_total", "country", "ES").Add(4)
	r.Gauge("breakers_open").Set(1)
	r.Histogram("load_seconds", []float64{0.1, 1}, "country", "ES").Observe(2)
	r.Counter("fresh_total").Inc()
	after := r.Snapshot()

	d := after.DeltaFrom(before)
	got := map[string]SnapshotPoint{}
	for _, p := range d.Points {
		got[p.Name+p.Labels] = p
	}
	// Unchanged series are dropped: US visits stay home.
	if _, ok := got[`visits_total{country="US"}`]; ok {
		t.Error("unchanged counter shipped in delta")
	}
	if p := got[`visits_total{country="ES"}`]; p.Count != 4 {
		t.Errorf("counter delta %d, want 4", p.Count)
	}
	if p := got["breakers_open"]; p.Value != 1 {
		t.Errorf("gauge delta carries %v, want current value 1", p.Value)
	}
	if p := got[`load_seconds{country="ES"}`]; p.Count != 1 || math.Abs(p.Value-2) > 1e-9 {
		t.Errorf("histogram delta count=%d sum=%v, want 1 observation of 2", p.Count, p.Value)
	}
	// A series born between snapshots ships whole.
	if p := got["fresh_total"]; p.Count != 1 {
		t.Errorf("new counter delta %d, want 1", p.Count)
	}

	// A counter that went backwards (restarted source) ships nothing:
	// there is no safe increment to add.
	shrunk := &Snapshot{Points: []SnapshotPoint{
		{Name: "visits_total", Kind: "counter", Labels: `{country="ES"}`, Count: 1},
	}}
	if d := shrunk.DeltaFrom(before); len(d.Points) != 0 {
		t.Errorf("restarted counter produced a delta: %+v", d.Points)
	}
}

func TestMergeSnapshotFederates(t *testing.T) {
	worker := crawlishRegistry().Snapshot().DeltaFrom(nil)
	coord := NewRegistry()
	coord.MergeSnapshot(worker, "shard", "2", "worker", "w1")

	if got := coord.Counter("visits_total", "country", "ES", "shard", "2", "worker", "w1").Value(); got != 3 {
		t.Errorf("federated ES visits %d, want 3", got)
	}
	if got := coord.Gauge("breakers_open", "shard", "2", "worker", "w1").Value(); got != 2 {
		t.Errorf("federated gauge %v, want 2", got)
	}
	h := coord.Histogram("load_seconds", []float64{0.1, 1}, "country", "ES", "shard", "2", "worker", "w1")
	if h.Count() != 2 {
		t.Errorf("federated histogram count %d, want 2", h.Count())
	}

	// Merging two workers' deltas in either order lands the same state.
	w2 := crawlishRegistry().Snapshot().DeltaFrom(nil)
	ab, ba := NewRegistry(), NewRegistry()
	ab.MergeSnapshot(worker, "worker", "w1")
	ab.MergeSnapshot(w2, "worker", "w2")
	ba.MergeSnapshot(w2, "worker", "w2")
	ba.MergeSnapshot(worker, "worker", "w1")
	var ea, eb bytes.Buffer
	if err := ab.WriteExposition(&ea); err != nil {
		t.Fatal(err)
	}
	if err := ba.WriteExposition(&eb); err != nil {
		t.Fatal(err)
	}
	if ea.String() != eb.String() {
		t.Error("merge order changed the federated exposition")
	}
}

// TestMergeSnapshotSkipsEchoes pins the feedback guard: a snapshot
// point already carrying one of the extra label keys is the merger's
// own federated output echoed back (a worker sharing the coordinator's
// registry), and re-merging it would mint a fresh series every round.
func TestMergeSnapshotSkipsEchoes(t *testing.T) {
	coord := NewRegistry()
	echo := &Snapshot{Points: []SnapshotPoint{
		{Name: "visits_total", Kind: "counter", Labels: `{country="ES",worker="w1"}`, Count: 9},
		{Name: "visits_total", Kind: "counter", Labels: `{country="ES"}`, Count: 2},
	}}
	coord.MergeSnapshot(echo, "worker", "w2")
	snap := coord.Snapshot()
	if len(snap.Points) != 1 {
		t.Fatalf("registry holds %d series, want only the non-echo one: %+v", len(snap.Points), snap.Points)
	}
	if p := snap.Points[0]; p.Labels != `{country="ES",worker="w2"}` || p.Count != 2 {
		t.Errorf("merged point %+v, want the fresh series at 2", p)
	}
}

// TestMergeSnapshotHostile feeds the merge malformed and conflicting
// points: they must be skipped, never panic or corrupt the exposition.
func TestMergeSnapshotHostile(t *testing.T) {
	coord := NewRegistry()
	coord.Counter("visits_total").Add(1)
	hostile := &Snapshot{Points: []SnapshotPoint{
		{Name: "", Kind: "counter", Count: 5},
		{Name: "visits_total", Kind: "gauge", Value: 99},        // kind conflict
		{Name: "visits_total", Kind: "counter", Labels: "junk"}, // malformed labels
		{Name: "visits_total", Kind: "counter", Labels: "{", Count: 1},
		{Name: "ok_total", Kind: "counter", Count: 2},
	}}
	coord.MergeSnapshot(hostile)
	if got := coord.Counter("visits_total").Value(); got != 1 {
		t.Errorf("kind-conflicting point mutated the counter: %d", got)
	}
	if got := coord.Counter("ok_total").Value(); got != 2 {
		t.Errorf("well-formed point skipped: %d", got)
	}
	var buf bytes.Buffer
	if err := coord.WriteExposition(&buf); err != nil {
		t.Fatalf("exposition after hostile merge: %v", err)
	}
	// Nil-safety both ways.
	var nilReg *Registry
	nilReg.MergeSnapshot(hostile)
	coord.MergeSnapshot(nil)
}

// TestSnapshotDeltaMergeRoundTrip is federation's core claim end to
// end: per-boundary deltas merged at the coordinator reconstruct the
// worker's full counters, no matter how activity splits across shards.
func TestSnapshotDeltaMergeRoundTrip(t *testing.T) {
	worker := NewRegistry()
	coord := NewRegistry()
	var last *Snapshot
	for shard, n := range []int{3, 0, 7} {
		for i := 0; i < n; i++ {
			worker.Counter("visits_total", "country", "ES").Inc()
			worker.Histogram("load_seconds", []float64{1}, "country", "ES").Observe(0.5)
		}
		snap := worker.Snapshot()
		coord.MergeSnapshot(snap.DeltaFrom(last), "worker", "w1")
		_ = shard
		last = snap
	}
	if got := coord.Counter("visits_total", "country", "ES", "worker", "w1").Value(); got != 10 {
		t.Errorf("reconstructed counter %d, want 10", got)
	}
	if got := coord.Histogram("load_seconds", []float64{1}, "country", "ES", "worker", "w1").Count(); got != 10 {
		t.Errorf("reconstructed histogram count %d, want 10", got)
	}
}
