package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "worker", "all")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterSameSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v")
	b := reg.Counter("x_total", "k", "v")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := reg.Counter("x_total", "k", "other"); c == a {
		t.Fatal("different labels must return a different counter")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("inflight")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge = %v, want 0", v)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i%4) * 0.05)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	wantSum := 2000 * (0 + 0.05 + 0.10 + 0.15)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramQuantiles feeds known distributions and checks the
// interpolated quantiles.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	// Uniform 1..1000 ms into decade-ish buckets.
	h := reg.Histogram("u_seconds", []float64{0.1, 0.25, 0.5, 0.75, 1.0})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	checks := []struct{ q, want, tol float64 }{
		{0.50, 0.50, 0.01},
		{0.95, 0.95, 0.01},
		{0.99, 0.99, 0.01},
	}
	for _, c := range checks {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("uniform p%.0f = %v, want %v±%v", c.q*100, got, c.want, c.tol)
		}
	}

	// Point mass: everything in one bucket interpolates within it.
	p := reg.Histogram("p_seconds", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		p.Observe(1.5)
	}
	if got := p.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("point-mass p50 = %v, want within (1,2]", got)
	}

	// Overflow clamps to the top finite bound.
	o := reg.Histogram("o_seconds", []float64{1, 2})
	for i := 0; i < 10; i++ {
		o.Observe(100)
	}
	if got := o.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %v, want 2", got)
	}

	if got := (*Histogram)(nil).Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(1)
	reg.Gauge("b").Add(-2)
	reg.Histogram("c", nil).Observe(0.5)
	reg.Describe("a", "help")
	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, sb.String())
	}
}

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Describe("req_total", "requests served")
	reg.Counter("req_total", "class", "2xx", "country", "ES").Add(7)
	reg.Counter("req_total", "class", "5xx", "country", "ES").Inc()
	reg.Gauge("temp").Set(3.5)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP req_total requests served",
		"# TYPE req_total counter",
		`req_total{class="2xx",country="ES"} 7`,
		"# TYPE temp gauge",
		"temp 3.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	validateExposition(t, out)
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	reg.WriteExposition(&sb)
	if !strings.Contains(sb.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping: %s", sb.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind conflict")
		}
	}()
	reg.Gauge("dup")
}
