package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// Exposition-format grammar: every line must be a comment or
// name{labels} value — the subset of Prometheus text format 0.0.4 the
// registry emits.
var (
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?(Inf|[0-9.eE+-]+))$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

func validateExposition(t *testing.T, body string) {
	t.Helper()
	seenTypes := map[string]bool{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if !typeLine.MatchString(line) {
				t.Errorf("line %d: bad TYPE line %q", i+1, line)
			}
			name := strings.Fields(line)[2]
			if seenTypes[name] {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, name)
			}
			seenTypes[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or quantile comment
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line %d: invalid sample %q", i+1, line)
		}
	}
}

func seedRegistry() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Describe("demo_requests_total", "demo requests")
	reg.Counter("demo_requests_total", "class", "2xx").Add(5)
	h := reg.Histogram("demo_latency_seconds", LatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	tr := NewTracer(64)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End()
	root.End()
	return reg, tr
}

func TestAdminMetricsScrape(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`demo_requests_total{class="2xx"} 5`,
		`demo_latency_seconds_bucket{le="+Inf"} 100`,
		"demo_latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	validateExposition(t, out)
}

func TestAdminSpans(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Capacity int
		Count    int
		Spans    []SpanRecord
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Capacity != 64 || got.Count != 2 {
		t.Fatalf("capacity=%d count=%d, want 64/2", got.Capacity, got.Count)
	}
	// child ended first, so it is oldest in the buffer.
	if got.Spans[0].Name != "child" || got.Spans[0].ParentID != got.Spans[1].ID {
		t.Fatalf("span nesting lost over HTTP: %+v", got.Spans)
	}
}

func TestAdminPprofAndIndex(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr))
	defer srv.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile?seconds=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestServeAdminLifecycle(t *testing.T) {
	reg, tr := seedRegistry()
	a, err := ServeAdmin("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", a.Addr())); err == nil {
		t.Fatal("admin listener still serving after Close")
	}
	var nilAdmin *AdminServer
	if nilAdmin.Addr() != "" || nilAdmin.Close() != nil {
		t.Fatal("nil AdminServer must be inert")
	}
}
