package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// Exposition-format grammar: every line must be a comment or
// name{labels} value — the subset of Prometheus text format 0.0.4 the
// registry emits.
var (
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?(Inf|[0-9.eE+-]+))$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

func validateExposition(t *testing.T, body string) {
	t.Helper()
	seenTypes := map[string]bool{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if !typeLine.MatchString(line) {
				t.Errorf("line %d: bad TYPE line %q", i+1, line)
			}
			name := strings.Fields(line)[2]
			if seenTypes[name] {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, name)
			}
			seenTypes[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or quantile comment
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line %d: invalid sample %q", i+1, line)
		}
	}
}

func seedRegistry() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Describe("demo_requests_total", "demo requests")
	reg.Counter("demo_requests_total", "class", "2xx").Add(5)
	h := reg.Histogram("demo_latency_seconds", LatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	tr := NewTracer(64)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End()
	root.End()
	return reg, tr
}

func TestAdminMetricsScrape(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`demo_requests_total{class="2xx"} 5`,
		`demo_latency_seconds_bucket{le="+Inf"} 100`,
		"demo_latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	validateExposition(t, out)
}

func TestAdminSpans(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Capacity int
		Count    int
		Spans    []SpanRecord
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Capacity != 64 || got.Count != 2 {
		t.Fatalf("capacity=%d count=%d, want 64/2", got.Capacity, got.Count)
	}
	// child ended first, so it is oldest in the buffer.
	if got.Spans[0].Name != "child" || got.Spans[0].ParentID != got.Spans[1].ID {
		t.Fatalf("span nesting lost over HTTP: %+v", got.Spans)
	}
}

func TestAdminPprofAndIndex(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr, nil))
	defer srv.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile?seconds=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestAdminSpanNameFilter(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/spans?name=child")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Count int
		Spans []SpanRecord
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Count != 1 || got.Spans[0].Name != "child" {
		t.Fatalf("?name=child returned %+v", got)
	}

	resp2, err := http.Get(srv.URL + "/spans?name=zzz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var none struct{ Count int }
	if err := json.NewDecoder(resp2.Body).Decode(&none); err != nil {
		t.Fatal(err)
	}
	if none.Count != 0 {
		t.Fatalf("?name=zzz matched %d spans, want 0", none.Count)
	}
}

func TestAdminHealthz(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(nil, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(body), "ok\n") {
		t.Fatalf("healthz body %q", body)
	}
	for _, field := range []string{"goroutines ", "heap_alloc_bytes ", "gc_cycles "} {
		if !strings.Contains(string(body), field) {
			t.Errorf("healthz missing runtime field %q in %q", field, body)
		}
	}
}

func TestAdminTrace(t *testing.T) {
	reg, tr := seedRegistry()
	srv := httptest.NewServer(AdminHandler(reg, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Args["span_id"] == "" {
			t.Errorf("event %q missing span_id arg", ev.Name)
		}
	}
}

func TestAdminFlight(t *testing.T) {
	fr := NewFlightRecorder(64, 1, nil)
	fr.RecordVisit(VisitEvent{Site: "a.com", OK: true})
	fr.RecordVisit(VisitEvent{Site: "b.com", FailClass: "dns"})
	srv := httptest.NewServer(AdminHandler(nil, nil, fr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	if got := resp.Header.Get("X-Flight-Kept"); got != "2" {
		t.Errorf("X-Flight-Kept = %q, want 2", got)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "a.com") || !strings.Contains(lines[1], "dns") {
		t.Fatalf("flight body:\n%s", body)
	}
}

func TestServeAdminLifecycle(t *testing.T) {
	reg, tr := seedRegistry()
	a, err := ServeAdmin("127.0.0.1:0", reg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", a.Addr())); err == nil {
		t.Fatal("admin listener still serving after Close")
	}
	var nilAdmin *AdminServer
	if nilAdmin.Addr() != "" || nilAdmin.Close() != nil {
		t.Fatal("nil AdminServer must be inert")
	}
}
