// Package consent implements the regulatory-compliance detectors of
// Section 7: cookie-consent banner detection and classification under the
// Degeling et al. taxonomy, age-verification interstitial detection (with
// the parent/grandparent text verification the paper's Selenium crawler
// performs), privacy-policy link discovery, and policy-text analysis. All
// keyword matching covers the paper's eight languages via internal/lingo.
package consent

import (
	"sort"
	"strings"

	"pornweb/internal/htmlx"
	"pornweb/internal/lingo"
)

// BannerType mirrors the Degeling taxonomy as the paper applies it
// (Slider/Checkbox merged into Other because classifying them needs
// interaction).
type BannerType int

// Banner classifications.
const (
	BannerNone BannerType = iota
	BannerNoOption
	BannerConfirmation
	BannerBinary
	BannerOther
)

// String renders the classification as Table 8 prints it.
func (b BannerType) String() string {
	switch b {
	case BannerNoOption:
		return "No Option"
	case BannerConfirmation:
		return "Confirmation"
	case BannerBinary:
		return "Binary"
	case BannerOther:
		return "Others"
	default:
		return "None"
	}
}

var (
	bannerPhrases  = lingo.AllLanguageWords(lingo.CookieBannerPhrases)
	acceptWords    = lingo.AllLanguageWords(lingo.AgeConfirmWords)
	rejectWords    = lingo.AllLanguageWords(lingo.BannerRejectWords)
	settingsWords  = lingo.AllLanguageWords(lingo.BannerSettingsWords)
	warningPhrases = lingo.AllLanguageWords(lingo.AgeWarningPhrases)
	privacyWords   = lingo.AllLanguageWords(lingo.PrivacyLinkWords)
	signupWords    = lingo.AllLanguageWords(lingo.SignupWords)
	premiumWords   = lingo.AllLanguageWords(lingo.PremiumWords)
	paywallWords   = lingo.AllLanguageWords(lingo.PaywallWords)
)

// isFloating approximates the paper's "floating element" test: fixed or
// absolute positioning in the style attribute, or banner-ish id/class.
func isFloating(n *htmlx.Node) bool {
	style := strings.ToLower(n.Attr("style"))
	if strings.Contains(style, "position:fixed") || strings.Contains(style, "position: fixed") ||
		strings.Contains(style, "position:absolute") || strings.Contains(style, "position: absolute") {
		return true
	}
	idcls := strings.ToLower(n.Attr("id") + " " + n.Attr("class"))
	for _, m := range []string{"banner", "overlay", "modal", "consent", "gdpr", "notice", "popup"} {
		if strings.Contains(idcls, m) {
			return true
		}
	}
	return false
}

// DetectBanner finds a cookie-consent banner in the document and classifies
// it. Classification follows the paper's automatable subset: the banner's
// own text plus its buttons decide the type.
func DetectBanner(doc *htmlx.Node) (BannerType, bool) {
	var banner *htmlx.Node
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode || !isFloating(n) {
			return true
		}
		if _, ok := lingo.ContainsAny(n.InnerText(), bannerPhrases); ok {
			banner = n
			return false
		}
		return true
	})
	if banner == nil {
		return BannerNone, false
	}
	return classifyBanner(banner), true
}

func classifyBanner(banner *htmlx.Node) BannerType {
	var hasAccept, hasReject, hasSettings, hasSlider, hasCheckbox bool
	banner.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		switch n.Tag {
		case "button", "a":
			text := strings.ToLower(n.InnerText())
			if _, ok := lingo.ContainsAny(text, settingsWords); ok {
				hasSettings = true
			} else if _, ok := lingo.ContainsAny(text, rejectWords); ok {
				hasReject = true
			} else if _, ok := lingo.ContainsAny(text, acceptWords); ok {
				hasAccept = true
			}
		case "input":
			switch strings.ToLower(n.Attr("type")) {
			case "range":
				hasSlider = true
			case "checkbox":
				hasCheckbox = true
			}
		}
		return true
	})
	switch {
	case hasSlider || hasCheckbox || hasSettings:
		return BannerOther
	case hasAccept && hasReject:
		return BannerBinary
	case hasAccept:
		return BannerConfirmation
	default:
		return BannerNoOption
	}
}

// GateInfo describes a detected age-verification mechanism.
type GateInfo struct {
	// EnterURL is the link/button target that bypasses the gate; empty when
	// the gate is not bypassable by clicking (e.g. the Russian social-login
	// wall).
	EnterURL   string
	Bypassable bool
	// MatchedWord is the keyword that triggered detection (diagnostics).
	MatchedWord string
}

// DetectAgeGate searches the landing page for an age-verification
// interstitial: an element whose text matches one of the confirm keywords
// in any of the eight languages, whose parent or grandparent carries an
// adult-content warning (the false-positive filter from Section 3.1).
func DetectAgeGate(doc *htmlx.Node) (*GateInfo, bool) {
	var info *GateInfo
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		if n.Tag != "a" && n.Tag != "button" {
			return true
		}
		word, ok := lingo.ContainsAny(n.InnerText(), acceptWords)
		if !ok {
			return true
		}
		// Verify the parent or grandparent mentions an adult warning (the
		// paper's false-positive filter). Whole-page containers do not
		// count: a cookie-banner button must not match just because an
		// age warning exists elsewhere on the page.
		for level := 1; level <= 2; level++ {
			anc := n.Ancestor(level)
			if anc == nil || anc.Tag == "body" || anc.Tag == "html" || anc.Type != htmlx.ElementNode {
				break
			}
			if _, warn := lingo.ContainsAny(anc.InnerText(), warningPhrases); warn {
				info = &GateInfo{MatchedWord: word}
				if n.Tag == "a" {
					if href := n.Attr("href"); href != "" {
						info.EnterURL = href
						info.Bypassable = true
					}
				}
				return false
			}
		}
		return true
	})
	if info != nil {
		return info, true
	}
	// Social-login walls: a form inside an overlay with no bypass link.
	var social bool
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type == htmlx.ElementNode && n.Tag == "form" {
			anc := n.Ancestor(1)
			for level := 1; level <= 3 && anc != nil; level++ {
				if isFloating(anc) {
					action := strings.ToLower(n.Attr("action"))
					if strings.Contains(action, "login") || strings.Contains(action, "social") {
						social = true
						return false
					}
				}
				anc = anc.Ancestor(1)
			}
		}
		return true
	})
	if social {
		return &GateInfo{Bypassable: false}, true
	}
	return nil, false
}

// FindPolicyLinks returns the hrefs of links whose anchor text or href
// matches the privacy keywords, deduplicated in document order.
func FindPolicyLinks(doc *htmlx.Node) []string {
	var out []string
	seen := map[string]bool{}
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode || n.Tag != "a" {
			return true
		}
		href := n.Attr("href")
		if href == "" || seen[href] {
			return true
		}
		text := strings.ToLower(n.InnerText() + " " + href)
		if _, ok := lingo.ContainsAny(text, privacyWords); ok {
			seen[href] = true
			out = append(out, href)
		}
		return true
	})
	return out
}

// PolicyAnalysis summarizes one privacy-policy text (Section 7.3).
type PolicyAnalysis struct {
	Letters              int
	Words                int
	MentionsGDPR         bool
	DisclosesCookies     bool
	DisclosesThirdParty  bool
	ListedThirdParties   []string // hosts enumerated in the policy, if any
	HasControllerContact bool     // names a controller or reachable contact
}

// AnalyzePolicy inspects extracted policy text.
func AnalyzePolicy(text string) PolicyAnalysis {
	lower := strings.ToLower(text)
	pa := PolicyAnalysis{
		Letters: len([]rune(text)),
		Words:   len(strings.Fields(text)),
	}
	for _, m := range lingo.GDPRMarkers {
		if strings.Contains(text, m) {
			pa.MentionsGDPR = true
			break
		}
	}
	pa.DisclosesCookies = strings.Contains(lower, "cookie")
	pa.DisclosesThirdParty = strings.Contains(lower, "third part") || strings.Contains(lower, "third-part")
	pa.HasControllerContact = strings.Contains(lower, "data controller")
	pa.ListedThirdParties = extractListedHosts(text)
	return pa
}

// extractListedHosts pulls hostnames from the "complete list of third-party
// services" enumeration, when present.
func extractListedHosts(text string) []string {
	marker := "complete list of third-party services"
	idx := strings.Index(strings.ToLower(text), marker)
	if idx < 0 {
		return nil
	}
	rest := text[idx:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return nil
	}
	segment := rest[colon+1:]
	if nl := strings.IndexByte(segment, '\n'); nl >= 0 {
		segment = segment[:nl]
	}
	var hosts []string
	for _, f := range strings.Split(segment, ",") {
		f = strings.TrimSuffix(strings.TrimSpace(f), ".")
		if strings.Contains(f, ".") && !strings.ContainsAny(f, " \t") {
			hosts = append(hosts, strings.ToLower(f))
		}
	}
	sort.Strings(hosts)
	return hosts
}

// Monetization is the Section 4.1 business-model classification.
type Monetization struct {
	HasAccounts bool // Log In / Sign Up keywords present
	HasPremium  bool // Premium offers present
	Paid        bool // payment-wall markers present
}

// DetectMonetization classifies a landing page's monetization signals.
func DetectMonetization(doc *htmlx.Node) Monetization {
	text := strings.ToLower(doc.InnerText())
	var m Monetization
	if _, ok := lingo.ContainsAny(text, signupWords); ok {
		m.HasAccounts = true
	}
	if _, ok := lingo.ContainsAny(text, premiumWords); ok {
		m.HasPremium = true
	}
	if _, ok := lingo.ContainsAny(text, paywallWords); ok {
		m.Paid = true
	}
	return m
}

// ExtractPolicyText pulls the readable text out of a policy page document.
func ExtractPolicyText(doc *htmlx.Node) string {
	if article := doc.First("article"); article != nil {
		return article.InnerText()
	}
	if body := doc.First("body"); body != nil {
		return body.InnerText()
	}
	return doc.InnerText()
}
