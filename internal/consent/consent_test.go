package consent

import (
	"strings"
	"testing"

	"pornweb/internal/htmlx"
	"pornweb/internal/webgen"
)

func TestDetectBannerTypesFromGenerator(t *testing.T) {
	// The generator's banner markup must round-trip through the detector
	// for every type and language.
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.05})
	want := map[webgen.BannerType]BannerType{
		webgen.BannerNoOption:     BannerNoOption,
		webgen.BannerConfirmation: BannerConfirmation,
		webgen.BannerBinary:       BannerBinary,
		webgen.BannerOther:        BannerOther,
	}
	seen := map[webgen.BannerType]bool{}
	for _, s := range eco.PornSites {
		if s.BannerEU == webgen.BannerNone || seen[s.BannerEU] {
			continue
		}
		html := eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})
		got, ok := DetectBanner(htmlx.Parse(html))
		if !ok {
			t.Errorf("site %s (lang %s): banner %v not detected", s.Host, s.Language, s.BannerEU)
			continue
		}
		if got != want[s.BannerEU] {
			t.Errorf("site %s: banner %v classified as %v", s.Host, s.BannerEU, got)
		}
		seen[s.BannerEU] = true
	}
	if len(seen) < 2 {
		t.Errorf("only %d banner types exercised at this scale", len(seen))
	}
}

func TestNoBannerNoDetection(t *testing.T) {
	doc := htmlx.Parse(`<html><body><p>We use cookies to improve the dough of our biscuits.</p></body></html>`)
	if _, ok := DetectBanner(doc); ok {
		t.Error("non-floating text must not be detected as banner")
	}
}

func TestBannerClassificationManual(t *testing.T) {
	cases := []struct {
		html string
		want BannerType
	}{
		{`<div style="position:fixed"><p>This website uses cookies.</p></div>`, BannerNoOption},
		{`<div class="cookie-banner"><p>We use cookies.</p><button>Accept</button></div>`, BannerConfirmation},
		{`<div class="consent"><p>We use cookies.</p><button>Accept</button><button>Decline</button></div>`, BannerBinary},
		{`<div class="consent"><p>We use cookies.</p><button>Accept</button><a href="/s">Cookie settings</a></div>`, BannerOther},
		{`<div class="notice"><p>Этот сайт использует файлы cookie.</p><button>Принять</button></div>`, BannerConfirmation},
	}
	for i, c := range cases {
		got, ok := DetectBanner(htmlx.Parse(c.html))
		if !ok {
			t.Errorf("case %d: banner not detected", i)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestDetectAgeGateFromGenerator(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.05})
	var tested int
	for _, s := range eco.PornSites {
		g := s.GateFor("ES")
		if g != webgen.GateSimple {
			continue
		}
		html := eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})
		info, ok := DetectAgeGate(htmlx.Parse(html))
		if !ok {
			t.Errorf("site %s (lang %s): gate not detected", s.Host, s.AgeGateLang)
			continue
		}
		if !info.Bypassable || info.EnterURL == "" {
			t.Errorf("site %s: simple gate should be bypassable: %+v", s.Host, info)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no gated sites at this scale")
	}
}

func TestDetectSocialLoginGate(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.05})
	ph := eco.SiteByHost["pornhub.com"]
	if ph == nil {
		t.Fatal("pornhub missing")
	}
	html := eco.RenderLanding(ph, webgen.PageContext{Country: "RU", Scheme: "https"})
	info, ok := DetectAgeGate(htmlx.Parse(html))
	if !ok {
		t.Fatal("social gate not detected")
	}
	if info.Bypassable {
		t.Error("social-login gate must not be bypassable")
	}
}

func TestAgeGateFalsePositiveFilter(t *testing.T) {
	// A "Continue" button without an adult warning in its ancestry must
	// not count (the paper's parent/grandparent verification).
	doc := htmlx.Parse(`<html><body><div class="pager"><a href="/page2">Continue</a></div></body></html>`)
	if _, ok := DetectAgeGate(doc); ok {
		t.Error("pagination link misdetected as age gate")
	}
}

func TestFindPolicyLinks(t *testing.T) {
	doc := htmlx.Parse(`<nav>
<a href="/about">About</a>
<a href="/privacy">Privacy Policy</a>
<a href="/datenschutz">Datenschutz</a>
<a href="/terms">Terms</a>
</nav>`)
	links := FindPolicyLinks(doc)
	if len(links) != 2 || links[0] != "/privacy" || links[1] != "/datenschutz" {
		t.Errorf("links = %v", links)
	}
}

func TestFindPolicyLinksGeneratedLocalized(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.05})
	var tested int
	for _, s := range eco.PornSites {
		if !s.HasPolicy || s.Language == "en" {
			continue
		}
		html := eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})
		if len(FindPolicyLinks(htmlx.Parse(html))) == 0 {
			t.Errorf("site %s (lang %s): policy link not found", s.Host, s.Language)
		}
		tested++
		if tested > 20 {
			break
		}
	}
	if tested == 0 {
		t.Skip("no localized policied sites at this scale")
	}
}

func TestAnalyzePolicy(t *testing.T) {
	text := `Privacy Policy. We use cookies and similar technologies.
Certain features are provided by third parties.
We comply with the General Data Protection Regulation (GDPR).
The data controller for x.com is Acme Media.
The complete list of third-party services embedded on this website is: ads.example.com, track.example.net.`
	pa := AnalyzePolicy(text)
	if !pa.MentionsGDPR || !pa.DisclosesCookies || !pa.DisclosesThirdParty || !pa.HasControllerContact {
		t.Errorf("analysis = %+v", pa)
	}
	if len(pa.ListedThirdParties) != 2 || pa.ListedThirdParties[0] != "ads.example.com" {
		t.Errorf("listed = %v", pa.ListedThirdParties)
	}
	if pa.Letters == 0 || pa.Words == 0 {
		t.Error("length stats missing")
	}
}

func TestAnalyzePolicyNegative(t *testing.T) {
	pa := AnalyzePolicy("We sell shoes. Nothing to see here.")
	if pa.MentionsGDPR || pa.DisclosesCookies || pa.DisclosesThirdParty || len(pa.ListedThirdParties) != 0 {
		t.Errorf("analysis = %+v", pa)
	}
}

func TestDetectMonetization(t *testing.T) {
	doc := htmlx.Parse(`<nav><a href="/account">Sign Up</a><a href="/premium">Premium</a></nav>
<p class="paywall">Subscribe now for $9.99 per month</p>`)
	m := DetectMonetization(doc)
	if !m.HasAccounts || !m.HasPremium || !m.Paid {
		t.Errorf("monetization = %+v", m)
	}
	free := DetectMonetization(htmlx.Parse(`<p>free videos daily</p>`))
	if free.HasAccounts || free.Paid {
		t.Errorf("free site misclassified: %+v", free)
	}
}

func TestExtractPolicyText(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.02})
	for _, s := range eco.PornSites {
		if !s.HasPolicy {
			continue
		}
		page := webgen.RenderPolicyPage(s)
		text := ExtractPolicyText(htmlx.Parse(page))
		if !strings.Contains(text, "Privacy Policy") {
			t.Error("policy text extraction lost the heading")
		}
		// The extracted text must cover the bulk of the planted text.
		if len(text) < len(s.PolicyText)/2 {
			t.Errorf("extracted %d chars of %d", len(text), len(s.PolicyText))
		}
		return
	}
	t.Skip("no policied site")
}

func TestGeneratedMonetizationRoundTrip(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 9, Scale: 0.05})
	var subs, paid, detSubs, detPaid int
	for _, s := range eco.PornSites {
		html := eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})
		m := DetectMonetization(htmlx.Parse(html))
		if s.HasSubscription {
			subs++
			if m.HasAccounts {
				detSubs++
			}
		}
		if s.HasSubscription && s.PaidSubscription {
			paid++
			if m.Paid {
				detPaid++
			}
		}
	}
	if subs == 0 {
		t.Fatal("no subscription sites at this scale")
	}
	if detSubs != subs {
		t.Errorf("subscription detection %d/%d", detSubs, subs)
	}
	if paid > 0 && detPaid != paid {
		t.Errorf("paywall detection %d/%d", detPaid, paid)
	}
}
