package domain

import "testing"

// FuzzClassify feeds arbitrary site/contacted host pairs through the
// full party-labeling cascade (registrable-domain match, cert-org lookup,
// Levenshtein similarity) and the helpers under it. Nothing here may
// panic, Classify must be deterministic, and a host is always first-party
// to itself.
func FuzzClassify(f *testing.F) {
	f.Add("pornsite.com", "cdn.pornsite.com")
	f.Add("pornsite.com", "tracker.example")
	f.Add("doublepimp.com", "doublepimpssl.com")
	f.Add("a.co.uk", "b.co.uk")
	f.Add("", "")
	f.Add("xn--bcher-kva.example", "BCHER.example")
	f.Add("192.168.0.1", "192.168.0.1:8443")
	f.Add("..", ".")
	f.Fuzz(func(t *testing.T, site, contacted string) {
		c := &Classifier{CertOrg: map[string]string{Base(site): "Org", Base(contacted): "Org"}}
		got := c.Classify(site, contacted)
		if got != FirstParty && got != ThirdParty {
			t.Fatalf("Classify(%q, %q) = %v, not a valid Party", site, contacted, got)
		}
		if again := c.Classify(site, contacted); again != got {
			t.Fatalf("Classify(%q, %q) not deterministic: %v then %v", site, contacted, got, again)
		}
		// With a shared cert org both directions must agree on first-party.
		if got == FirstParty {
			if back := c.Classify(contacted, site); back != FirstParty {
				// Similarity is symmetric and Base is deterministic, so a
				// first-party verdict must survive swapping the arguments.
				t.Fatalf("Classify(%q, %q) = first-party but reverse = %v", site, contacted, back)
			}
		}
		if (&Classifier{}).Classify(site, site) != FirstParty {
			t.Fatalf("Classify(%q, itself) != first-party", site)
		}
		// The helpers must hold their invariants for any input.
		n := Normalize(site)
		if n != Normalize(n) {
			t.Fatalf("Normalize not idempotent for %q: %q vs %q", site, n, Normalize(n))
		}
		if s := Similarity(site, contacted); s < 0 || s > 1 {
			t.Fatalf("Similarity(%q, %q) = %v out of [0,1]", site, contacted, s)
		}
		if d := Levenshtein(site, contacted); d < 0 {
			t.Fatalf("Levenshtein(%q, %q) = %d", site, contacted, d)
		}
		Base(contacted)
		PublicSuffix(site)
		IsSubdomain(contacted, site)
	})
}
