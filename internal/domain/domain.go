// Package domain provides fully-qualified domain name (FQDN) utilities used
// throughout the study: public-suffix aware base-domain extraction,
// Levenshtein-based name similarity, and first/third-party labeling.
//
// The paper labels every URL observed during a crawl as first party, third
// party, or third-party advertising-and-tracking service (ATS). The labeling
// compares the FQDN and X.509 certificate organization of the contacted host
// against those of the visited site, falling back to a Levenshtein similarity
// threshold of 0.7 over the registrable domains (Section 4.2 of the paper).
package domain

import (
	"strings"
)

// publicSuffixes is a snapshot of the effective-TLD list entries needed for
// the generated ecosystem plus the common real-world suffixes that appear in
// the paper (e.g. .co.uk, .com.ru). A full Mozilla PSL is unnecessary: the
// generator only mints hostnames under these suffixes.
var publicSuffixes = map[string]bool{
	"com": true, "net": true, "org": true, "info": true, "biz": true,
	"xxx": true, "porn": true, "sex": true, "tube": true, "cam": true,
	"tv": true, "io": true, "me": true, "cc": true, "ws": true,
	"eu": true, "us": true, "uk": true, "es": true, "ru": true,
	"in": true, "sg": true, "de": true, "fr": true, "it": true,
	"nl": true, "pt": true, "ro": true, "top": true, "party": true,
	"pro": true, "re": true, "to": true, "ly": true, "ads": true,
	// Two-label public suffixes.
	"co.uk": true, "org.uk": true, "ac.uk": true,
	"com.ru": true, "net.ru": true, "org.ru": true,
	"com.es": true, "org.es": true,
	"co.in": true, "net.in": true,
	"com.sg": true, "net.sg": true,
	"com.br": true, "com.mx": true,
}

// IsPublicSuffix reports whether s (without leading dot) is a public suffix
// in the embedded snapshot.
func IsPublicSuffix(s string) bool {
	return publicSuffixes[strings.ToLower(s)]
}

// Normalize lower-cases a hostname and strips any trailing dot and port.
func Normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		// Strip :port unless it is part of an IPv6 literal.
		if _, rest := host[:i], host[i+1:]; allDigits(rest) {
			host = host[:i]
		}
	}
	// TrimRight, not TrimSuffix: degenerate inputs like ".." must still
	// normalize in one pass (Normalize is idempotent; the fuzz target
	// pins this).
	host = strings.TrimRight(host, ".")
	return host
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// PublicSuffix returns the longest matching public suffix of host according
// to the embedded snapshot, or the last label if none matches.
func PublicSuffix(host string) string {
	host = Normalize(host)
	labels := strings.Split(host, ".")
	// Try progressively shorter suffixes, longest match wins.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if publicSuffixes[candidate] {
			return candidate
		}
	}
	if len(labels) == 0 {
		return ""
	}
	return labels[len(labels)-1]
}

// Base returns the registrable domain (eTLD+1) of host: the public suffix
// plus one label. If host is itself a public suffix (or empty), Base returns
// host unchanged.
func Base(host string) string {
	host = Normalize(host)
	if host == "" {
		return ""
	}
	suffix := PublicSuffix(host)
	if host == suffix {
		return host
	}
	rest := strings.TrimSuffix(host, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix
}

// Label1 returns the first (left-most) label of the registrable domain,
// i.e. the "name" part without the public suffix. For "img.exoclick.com"
// it returns "exoclick".
func Label1(host string) string {
	base := Base(host)
	if i := strings.IndexByte(base, '.'); i > 0 {
		return base[:i]
	}
	return base
}

// IsSubdomain reports whether host is host==parent or a subdomain of parent.
func IsSubdomain(host, parent string) bool {
	host, parent = Normalize(host), Normalize(parent)
	return host == parent || strings.HasSuffix(host, "."+parent)
}

// Levenshtein computes the edit distance between a and b using the standard
// dynamic program with two rows. It operates on bytes, which is sufficient
// for DNS names (ASCII).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns a normalized similarity in [0,1] between two hostnames'
// registrable-domain name labels: 1 - distance/maxLen. The paper groups two
// FQDNs into the same entity when this exceeds 0.7 (e.g. doublepimp.com and
// doublepimpssl.com) while keeping doublepimp.com and doubleclick.net apart.
func Similarity(a, b string) float64 {
	la, lb := Label1(a), Label1(b)
	if la == "" && lb == "" {
		return 1
	}
	maxLen := len(la)
	if len(lb) > maxLen {
		maxLen = len(lb)
	}
	if maxLen == 0 {
		return 1
	}
	d := Levenshtein(la, lb)
	return 1 - float64(d)/float64(maxLen)
}

// SimilarityThreshold is the entity-grouping threshold from the paper.
const SimilarityThreshold = 0.7

// Party is the relationship of a contacted host to the visited site.
type Party int

const (
	// FirstParty hosts belong to the visited site itself.
	FirstParty Party = iota
	// ThirdParty hosts belong to a different entity.
	ThirdParty
)

// String names the party label.
func (p Party) String() string {
	if p == FirstParty {
		return "first-party"
	}
	return "third-party"
}

// Classifier labels contacted hosts as first or third party relative to a
// visited site, using the same cascade as the paper: same registrable
// domain, then same X.509 organization, then Levenshtein similarity > 0.7.
type Classifier struct {
	// CertOrg maps a hostname's registrable domain to the organization in
	// its X.509 certificate, when one was observed. Optional.
	CertOrg map[string]string
}

// Classify labels contacted relative to the visited site host.
func (c *Classifier) Classify(site, contacted string) Party {
	siteBase, hostBase := Base(site), Base(contacted)
	if siteBase == hostBase {
		return FirstParty
	}
	if c != nil && c.CertOrg != nil {
		so, ho := c.CertOrg[siteBase], c.CertOrg[hostBase]
		if so != "" && so == ho {
			return FirstParty
		}
	}
	if Similarity(site, contacted) > SimilarityThreshold {
		return FirstParty
	}
	return ThirdParty
}
