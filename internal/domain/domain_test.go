package domain

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{"example.com:8080", "example.com"},
		{" example.com ", "example.com"},
		{"sub.Example.Co.UK:443", "sub.example.co.uk"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "com"},
		{"www.example.co.uk", "co.uk"},
		{"a.b.example.com.ru", "com.ru"},
		{"xcvgdf.party", "party"},
		{"weird.unknowntld", "unknowntld"},
	}
	for _, c := range cases {
		if got := PublicSuffix(c.in); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBase(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"img100-589.xvideos.com", "xvideos.com"},
		{"a.b.c.example.co.uk", "example.co.uk"},
		{"com", "com"},
		{"", ""},
		{"adx.com.ru", "adx.com.ru"},
		{"sub.adx.com.ru", "adx.com.ru"},
	}
	for _, c := range cases {
		if got := Base(c.in); got != c.want {
			t.Errorf("Base(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabel1(t *testing.T) {
	cases := []struct{ in, want string }{
		{"img.exoclick.com", "exoclick"},
		{"doublepimpssl.com", "doublepimpssl"},
		{"a.example.co.uk", "example"},
		{"com", "com"},
	}
	for _, c := range cases {
		if got := Label1(c.in); got != c.want {
			t.Errorf("Label1(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	if !IsSubdomain("a.b.com", "b.com") {
		t.Error("a.b.com should be subdomain of b.com")
	}
	if !IsSubdomain("b.com", "b.com") {
		t.Error("b.com should be subdomain of itself")
	}
	if IsSubdomain("ab.com", "b.com") {
		t.Error("ab.com must not match b.com")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"doublepimp", "doublepimpssl", 3},
		{"doublepimp", "doubleclick", 4},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestLevenshteinMetricAxioms property-tests the metric axioms: identity,
// symmetry, triangle inequality, and the bound max(|a|,|b|).
func TestLevenshteinMetricAxioms(t *testing.T) {
	clip := func(s string) string {
		if len(s) > 24 {
			return s[:24]
		}
		return s
	}
	symmetry := func(a, b string) bool {
		a, b = clip(a), clip(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetry, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool {
		a = clip(a)
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	bound := func(a, b string) bool {
		a, b = clip(a), clip(b)
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d >= 0 && d <= maxLen
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Errorf("bound: %v", err)
	}
}

func TestSimilarity(t *testing.T) {
	// The paper's examples: doublepimp.com and doublepimpssl.com group
	// together; doublepimp.com and doubleclick.net do not.
	if s := Similarity("doublepimp.com", "doublepimpssl.com"); s <= SimilarityThreshold {
		t.Errorf("doublepimp vs doublepimpssl similarity %f, want > %f", s, SimilarityThreshold)
	}
	if s := Similarity("doublepimp.com", "doubleclick.net"); s > SimilarityThreshold {
		t.Errorf("doublepimp vs doubleclick similarity %f, want <= %f", s, SimilarityThreshold)
	}
	if s := Similarity("x.com", "x.com"); s != 1 {
		t.Errorf("identical similarity = %f, want 1", s)
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		// Keep inputs host-shaped.
		a = strings.Map(keepHostByte, a)
		b = strings.Map(keepHostByte, b)
		s := Similarity(a+".com", b+".com")
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func keepHostByte(r rune) rune {
	if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
		return r
	}
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return -1
}

func TestClassify(t *testing.T) {
	c := &Classifier{CertOrg: map[string]string{
		"hd100546b.com": "HProfits Ltd",
		"hprofits.com":  "HProfits Ltd",
		"pornhub.com":   "MindGeek",
	}}
	cases := []struct {
		site, host string
		want       Party
	}{
		{"pornhub.com", "cdn.pornhub.com", FirstParty},      // same base
		{"pornhub.com", "exoclick.com", ThirdParty},         // unrelated
		{"hd100546b.com", "hprofits.com", FirstParty},       // same cert org
		{"doublepimp.com", "doublepimpssl.com", FirstParty}, // Levenshtein
		{"doublepimp.com", "doubleclick.net", ThirdParty},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.site, tc.host); got != tc.want {
			t.Errorf("Classify(%q,%q) = %v, want %v", tc.site, tc.host, got, tc.want)
		}
	}
}

func TestClassifyNilClassifier(t *testing.T) {
	var c *Classifier
	if got := c.Classify("a.com", "b.com"); got != ThirdParty {
		t.Errorf("nil classifier Classify = %v, want ThirdParty", got)
	}
	if got := c.Classify("a.com", "www.a.com"); got != FirstParty {
		t.Errorf("nil classifier same-base Classify = %v, want FirstParty", got)
	}
}

func TestPartyString(t *testing.T) {
	if FirstParty.String() != "first-party" || ThirdParty.String() != "third-party" {
		t.Error("Party.String mismatch")
	}
}
