package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/resilience"
)

// Runner executes one shard assignment against a study: visit every
// host of the shard and return the visits in their durable serialized
// form. *core.Study implements it; tests substitute fakes.
type Runner interface {
	RunShard(ctx context.Context, a Assignment, kill *KillSwitch) (*Result, error)
}

// Worker is a coordinator's handle on one member of the fleet, local
// or remote. Run executes one assignment to completion; an error
// retires the worker and requeues the shard.
type Worker interface {
	Name() string
	Run(ctx context.Context, a Assignment) (*Result, error)
}

// LocalWorker runs assignments in-process against a Runner — the
// cheap fleet for tests and benchmarks, where N workers share one
// study and true process isolation is the shardci gate's job. Kill,
// when set, injects the seeded worker death.
type LocalWorker struct {
	Label  string
	Runner Runner
	Kill   *KillSwitch
}

// Name implements Worker.
func (w *LocalWorker) Name() string { return w.Label }

// Run implements Worker: a dead worker fails immediately (a crashed
// process does not answer), a live one runs the shard under its kill
// switch and stamps the result with its name.
func (w *LocalWorker) Run(ctx context.Context, a Assignment) (*Result, error) {
	if w.Kill.Dead() {
		return nil, fmt.Errorf("shard: worker %s: %w", w.Label, ErrWorkerKilled)
	}
	r, err := w.Runner.RunShard(ctx, a, w.Kill)
	if err != nil {
		return nil, fmt.Errorf("shard: worker %s: %w", w.Label, err)
	}
	r.Worker = w.Label
	return r, nil
}

// RemoteWorker is a coordinator's handle on a worker process reached
// over loopback HTTP. Every request routes through the resilience
// controller — bounded seeded-jitter retries and the per-host breaker
// — per the crawl path's transport contract.
type RemoteWorker struct {
	Label string
	// Addr is the worker server's host:port; MetricsAddr its admin
	// listener's, "" when the worker exposes none. MetricsAddr is
	// surfaced in the /fleet report so each worker stays individually
	// scrapeable.
	Addr        string
	MetricsAddr string
	Client      *http.Client
	Ctrl        *resilience.Controller
}

// Name implements Worker.
func (w *RemoteWorker) Name() string { return w.Label }

// Run implements Worker: frame the assignment, POST it to the worker's
// /run endpoint, and decode the framed result. A 409 is the worker
// refusing a foreign config fingerprint and is never retried.
func (w *RemoteWorker) Run(ctx context.Context, a Assignment) (*Result, error) {
	frame, err := EncodeAssignment(&a)
	if err != nil {
		return nil, err
	}
	status, body, err := postRouted(ctx, w.Client, w.Ctrl, "http://"+w.Addr+"/run", frame)
	if err != nil {
		return nil, fmt.Errorf("shard: worker %s: %w", w.Label, err)
	}
	switch status {
	case http.StatusOK:
	case http.StatusConflict:
		return nil, fmt.Errorf("shard: worker %s: %s: %w", w.Label,
			strings.TrimSpace(string(body)), ErrFingerprintMismatch)
	default:
		return nil, fmt.Errorf("shard: worker %s: HTTP %d: %s", w.Label, status,
			strings.TrimSpace(string(body)))
	}
	r, err := DecodeResult(body)
	if err != nil {
		return nil, fmt.Errorf("shard: worker %s: %w", w.Label, err)
	}
	return r, nil
}

// Shutdown asks the worker process to exit cleanly. Best-effort: a
// worker that already died satisfies the intent.
func (w *RemoteWorker) Shutdown(ctx context.Context) error {
	status, body, err := postRouted(ctx, w.Client, w.Ctrl, "http://"+w.Addr+"/shutdown", nil)
	if err != nil {
		return fmt.Errorf("shard: worker %s shutdown: %w", w.Label, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("shard: worker %s shutdown: HTTP %d: %s", w.Label, status,
			strings.TrimSpace(string(body)))
	}
	return nil
}

// Registration is the JSON body a worker POSTs to the coordinator's
// /register endpoint. MetricsAddr, when non-empty, is the worker's own
// admin listener, reported so the coordinator's /fleet view can link to
// each worker's scrape endpoint.
type Registration struct {
	Name        string `json:"name"`
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// Register announces a worker to the coordinator and retries (through
// the controller's policy) until the coordinator answers — workers and
// coordinator start concurrently, so the first attempts may land
// before the registration listener is up.
func Register(ctx context.Context, client *http.Client, ctrl *resilience.Controller, coordinatorAddr string, reg Registration) error {
	body, err := json.Marshal(reg)
	if err != nil {
		return fmt.Errorf("shard: register: %w", err)
	}
	status, resp, err := postRouted(ctx, client, ctrl, "http://"+coordinatorAddr+"/register", body)
	if err != nil {
		return fmt.Errorf("shard: register %s with %s: %w", reg.Name, coordinatorAddr, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("shard: register %s with %s: HTTP %d: %s", reg.Name, coordinatorAddr,
			status, strings.TrimSpace(string(resp)))
	}
	return nil
}

// postRouted is the package's single transport path: every control-
// plane POST — assignment dispatch, registration, shutdown — runs
// through the resilience controller's breaker and bounded retries, so
// a flaky loopback hop degrades into the same measured, policy-driven
// behavior as a flaky crawl target. Returns the terminal status and
// body; err is non-nil only when every attempt failed to produce a
// response.
func postRouted(ctx context.Context, client *http.Client, ctrl *resilience.Controller, url string, body []byte) (int, []byte, error) {
	if client == nil {
		client = http.DefaultClient
	}
	host := url
	if i := strings.Index(url, "//"); i >= 0 {
		host = url[i+2:]
		if j := strings.IndexByte(host, '/'); j >= 0 {
			host = host[:j]
		}
	}
	attempts := ctrl.Policy().MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if !resilience.Sleep(ctx, ctrl.Delay(attempt-1, 0)) {
				return 0, nil, ctx.Err()
			}
		}
		if err := ctrl.Allow(host); err != nil {
			lastErr = err
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return 0, nil, fmt.Errorf("shard: build request: %w", err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		//studylint:ignore rawhttp postRouted is the shard control plane's single sanctioned transport call: this Do runs under the resilience Allow/Report/Delay retry loop, so it IS the routed path
		resp, err := client.Do(req)
		if err != nil {
			ctrl.Report(host, false)
			lastErr = err
			if !resilience.Retryable(err) {
				break
			}
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxFramePayload+frameOverhead))
		if cerr := resp.Body.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			ctrl.Report(host, false)
			lastErr = err
			continue
		}
		if resilience.RetryableStatus(resp.StatusCode) && attempt < attempts {
			ctrl.Report(host, false)
			lastErr = fmt.Errorf("shard: HTTP %d from %s", resp.StatusCode, url)
			continue
		}
		ctrl.Report(host, true)
		return resp.StatusCode, respBody, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: no attempts admitted to %s", url)
	}
	return 0, nil, lastErr
}

// Server is the worker process's face: a loopback HTTP listener
// answering /run (execute a framed assignment), /healthz, and
// /shutdown (signal the process to exit). It refuses assignments whose
// config fingerprint or seed differ from its own, the same binding the
// durable store's segment header enforces, with HTTP 409.
type Server struct {
	// Label names the worker in results and logs.
	Label string
	// Runner executes assignments; Fingerprint and Seed are the study
	// identity the server will accept work for.
	Runner      Runner
	Fingerprint string
	Seed        int64
	// Kill, when set, injects the seeded worker death into every run.
	Kill *KillSwitch

	// Registry, Tracer and Flight are the worker's own observability
	// plane; when set (and the assignment asks for telemetry) each
	// result carries the registry delta, spans and flight events the
	// shard produced, and spans parent under the propagated trace
	// context. All nil leaves telemetry off — the result is then pure
	// data, which the coordinator tolerates (marked "partial" in
	// /fleet). MetricsAddr, when non-empty, is echoed in telemetry so
	// the fleet view can link to this worker's own admin listener.
	Registry    *obs.Registry
	Tracer      *obs.Tracer
	Flight      *obs.FlightRecorder
	MetricsAddr string

	mu sync.Mutex
	// guarded by mu
	ln net.Listener
	// guarded by mu
	srv *http.Server
	// done is set once in Start (under mu, before the listener serves)
	// and closed through once, so readers of the closed channel need no
	// lock.
	done chan struct{}
	once sync.Once

	// runMu serializes /run handling: the coordinator deals one shard
	// per worker per wave, so contention is not expected — the lock
	// exists so the telemetry delta brackets exactly one shard's
	// activity even if a client misbehaves.
	runMu sync.Mutex
	// guarded by runMu
	lastSnap *obs.Snapshot
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background. Addr reports the bound address.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return fmt.Errorf("shard: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: worker listen %s: %w", addr, err)
	}
	s.ln = ln
	s.done = make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/shutdown", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		_, _ = io.WriteString(w, "shutting down\n")
		s.once.Do(func() { close(s.done) })
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	s.srv = srv
	// The goroutine serves on locals: reading s.srv there would race
	// Close, which nils the field under mu.
	go func() { _ = srv.Serve(ln) }() // Serve always errors on Close; nothing to report
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Done is closed when a /shutdown request arrives.
func (s *Server) Done() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Close tears the listener down. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	s.once.Do(func() { close(s.done) })
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shard: worker close: %w", err)
	}
	return nil
}

// handleRun executes one framed assignment and answers with the framed
// result. When the assignment carries trace context, the shard runs
// under a span parented to the coordinator's dispatch span; when it asks
// for telemetry (and the server has an observability plane), the result
// carries the registry delta, spans and flight events the shard
// produced.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFramePayload+frameOverhead))
	if err != nil {
		http.Error(w, fmt.Sprintf("read assignment: %v", err), http.StatusBadRequest)
		return
	}
	a, err := DecodeAssignment(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if a.Fingerprint != s.Fingerprint || a.Seed != s.Seed {
		http.Error(w, fmt.Sprintf("assignment fingerprint %s seed %d, worker built for %s seed %d",
			a.Fingerprint, a.Seed, s.Fingerprint, s.Seed), http.StatusConflict)
		return
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()

	// Adopt the propagated trace context: stamp the run trace ID into
	// everything this tracer records from now on and open the shard's
	// root span under the coordinator's dispatch span.
	ctx := r.Context()
	var span *obs.Span
	if s.Tracer != nil && a.TraceID != "" {
		s.Tracer.SetTraceID(a.TraceID)
		ctx, span = s.Tracer.StartRemote(ctx, "shard/run", a.ParentSpan)
		span.SetAttr("stage", a.Stage)
		span.SetAttr("shard", fmt.Sprintf("%d/%d", a.Shard, a.Shards))
		span.SetAttr("worker", s.Label)
	}
	capture := a.Telemetry && s.Registry != nil
	var preSpanID, preKept uint64
	if capture {
		if s.lastSnap == nil {
			// Baseline at the first shard: study construction happened
			// before any assignment and belongs to no shard's delta.
			s.lastSnap = s.Registry.Snapshot()
		}
		preSpanID = maxSpanID(s.Tracer.Recent())
		_, preKept, _ = s.Flight.Stats()
	}

	res, err := s.Runner.RunShard(ctx, *a, s.Kill)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	res.Worker = s.Label
	span.End() // before span collection, so the shard's root span ships too
	if capture {
		snap := s.Registry.Snapshot()
		tel := &Telemetry{
			Worker:      s.Label,
			MetricsAddr: s.MetricsAddr,
			TraceID:     a.TraceID,
			Metrics:     snap.DeltaFrom(s.lastSnap),
		}
		s.lastSnap = snap
		for _, sp := range s.Tracer.Recent() {
			if sp.ID > preSpanID {
				tel.Spans = append(tel.Spans, sp)
			}
		}
		if s.Flight != nil {
			_, kept, _ := s.Flight.Stats()
			evs := s.Flight.Events()
			if n := int(kept - preKept); n > 0 {
				if n > len(evs) {
					n = len(evs)
				}
				tel.Flight = append(tel.Flight, evs[len(evs)-n:]...)
			}
		}
		res.Telemetry = tel
	}
	frame, err := EncodeResult(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(frame)
}

// maxSpanID returns the highest span ID in spans (0 for none): the
// telemetry capture's high-water mark for "spans this shard produced".
func maxSpanID(spans []obs.SpanRecord) uint64 {
	var max uint64
	for _, s := range spans {
		if s.ID > max {
			max = s.ID
		}
	}
	return max
}
