package shard

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"pornweb/internal/obs"
)

// Fleet observability metric names: the coordinator-owned fleet_* family
// (studylint reserves the prefix to this package).
const (
	metricFleetLive      = "fleet_workers_live"
	metricFleetRetired   = "fleet_workers_retired"
	metricFleetVisits    = "fleet_worker_visits_total"
	metricFleetHeartbeat = "fleet_worker_heartbeat_age_seconds"
)

// maxWorkerSpans bounds how many of a worker's spans the coordinator
// retains for the merged trace (newest win), mirroring the tracer ring's
// own bounded-memory stance.
const maxWorkerSpans = 4096

// Telemetry is a worker's observability sidecar for one shard result:
// the registry delta since the worker's previous shard, the spans the
// shard produced, and its kept flight events. It rides next to the data
// entries but is excluded from the result digest — telemetry loss
// degrades the fleet view, never the merge.
type Telemetry struct {
	// Worker echoes the producing worker's label; MetricsAddr its admin
	// listener, when it has one, so the fleet view can link to it.
	Worker      string `json:"worker,omitempty"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
	// TraceID echoes the propagated run trace ID.
	TraceID string `json:"trace_id,omitempty"`
	// Metrics is the worker registry's delta since its previous shard.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Spans are the spans the worker recorded while running the shard.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
	// Flight are the flight events the worker kept during the shard.
	Flight []obs.VisitEvent `json:"flight,omitempty"`
}

// WorkerHealth is one worker's row in the /fleet report.
type WorkerHealth struct {
	Name string `json:"name"`
	// Kind is "local" (in-process) or "remote" (worker process).
	Kind        string `json:"kind"`
	Addr        string `json:"addr,omitempty"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
	Live        bool   `json:"live"`
	// ShardsDone and Visits count completed assignments and the entries
	// they returned; Failures counts assignments that errored.
	ShardsDone int    `json:"shards_done"`
	Visits     int    `json:"visits"`
	Failures   int    `json:"failures"`
	LastError  string `json:"last_error,omitempty"`
	// Telemetry summarizes the worker's telemetry return path: "ok"
	// (every result carried a snapshot), "partial" (some results came
	// back without one), "inline" (local worker sharing the
	// coordinator's registry — nothing to federate), or "none" (no
	// result seen yet).
	Telemetry string `json:"telemetry"`
	// Spans is how many of the worker's spans the coordinator holds for
	// the merged trace.
	Spans int `json:"spans"`
	// LastHeartbeatAgeSeconds is the age of the worker's last completed
	// result (or registration, whichever is later); -1 before any.
	LastHeartbeatAgeSeconds float64 `json:"last_heartbeat_age_seconds"`
}

// StageProgress is one dispatched stage's row in the /fleet report.
type StageProgress struct {
	Stage   string `json:"stage"`
	Shards  int    `json:"shards"`
	Merged  int    `json:"merged"`
	Entries int    `json:"entries"`
}

// FleetReport is the /fleet endpoint's document: fleet size, per-worker
// health, per-stage shard progress, and the failure-class census.
type FleetReport struct {
	TraceID  string          `json:"trace_id,omitempty"`
	Live     int             `json:"live"`
	Retired  int             `json:"retired"`
	Workers  []WorkerHealth  `json:"workers"`
	Stages   []StageProgress `json:"stages,omitempty"`
	Failures map[string]int  `json:"failure_classes,omitempty"`
}

// workerHealth is the coordinator's mutable per-worker state behind a
// WorkerHealth row.
type workerHealth struct {
	kind        string
	addr        string
	metricsAddr string
	visits      int
	shards      int
	failures    int
	lastErr     string
	lastBeat    time.Time
	withTel     int // results that carried a telemetry snapshot
	withoutTel  int // results that should have but did not
	spans       []obs.SpanRecord
}

// failureClass buckets a dispatch error into the fleet failure census.
func failureClass(err error) string {
	switch {
	case errors.Is(err, ErrWorkerKilled):
		return "worker_killed"
	case errors.Is(err, ErrFingerprintMismatch):
		return "fingerprint_mismatch"
	case errors.Is(err, ErrDigestMismatch):
		return "digest_mismatch"
	case errors.Is(err, ErrBadFrame):
		return "bad_frame"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "transport"
	}
}

// noteWorker creates (or refreshes) a worker's health row at
// registration time and updates the fleet-size gauges.
func (c *Coordinator) noteWorker(name, kind, addr, metricsAddr string) {
	c.mu.Lock()
	if c.health == nil {
		c.health = map[string]*workerHealth{}
	}
	h := c.health[name]
	if h == nil {
		h = &workerHealth{}
		c.health[name] = h
	}
	h.kind = kind
	h.addr = addr
	h.metricsAddr = metricsAddr
	h.lastBeat = time.Now()
	c.mu.Unlock()
	c.updateFleetGauges()
}

// updateFleetGauges refreshes the fleet-size gauges from the registry of
// workers.
func (c *Coordinator) updateFleetGauges() {
	live, retired := c.Workers()
	c.metFleetLive.Set(float64(live))
	c.metFleetRetired.Set(float64(retired))
}

// noteResult records one successfully merged result against its worker:
// health counters, the per-worker visit counter, and — when the result
// carries telemetry — the federated merge of the worker's metric delta,
// spans, and flight events.
func (c *Coordinator) noteResult(w Worker, a Assignment, res *Result) {
	name := w.Name()
	_, isLocal := w.(*LocalWorker)
	c.mu.Lock()
	if c.health == nil {
		c.health = map[string]*workerHealth{}
	}
	h := c.health[name]
	if h == nil {
		h = &workerHealth{kind: "remote"}
		if isLocal {
			h.kind = "local"
		}
		c.health[name] = h
	}
	h.shards++
	h.visits += len(res.Entries)
	h.lastBeat = time.Now()
	tel := res.Telemetry
	wantTel := a.Telemetry && !isLocal
	if tel != nil {
		h.withTel++
		if tel.MetricsAddr != "" {
			h.metricsAddr = tel.MetricsAddr
		}
		if len(tel.Spans) > 0 {
			h.spans = append(h.spans, tel.Spans...)
			if len(h.spans) > maxWorkerSpans {
				h.spans = append([]obs.SpanRecord(nil), h.spans[len(h.spans)-maxWorkerSpans:]...)
			}
		}
	} else if wantTel {
		h.withoutTel++
	}
	c.mu.Unlock()

	c.reg.Counter(metricFleetVisits, "worker", name).Add(uint64(len(res.Entries)))
	if tel == nil {
		return
	}
	// Federate: the worker's metric delta lands in the coordinator
	// registry under worker/shard labels. Deltas add commutatively, so
	// results may arrive (and merge) in any order — the observability
	// mirror of the data Merger's order-independence.
	c.reg.MergeSnapshot(tel.Metrics, "shard", strconv.Itoa(res.Shard), "worker", name)
	for _, ev := range tel.Flight {
		ev.Worker = name
		ev.Shard = res.Shard
		c.Flight.RecordVisit(ev)
	}
}

// noteFailure records one failed assignment against its worker and the
// fleet failure census.
func (c *Coordinator) noteFailure(w Worker, err error) {
	class := failureClass(err)
	c.mu.Lock()
	if c.health == nil {
		c.health = map[string]*workerHealth{}
	}
	h := c.health[w.Name()]
	if h == nil {
		h = &workerHealth{kind: "remote"}
		if _, ok := w.(*LocalWorker); ok {
			h.kind = "local"
		}
		c.health[w.Name()] = h
	}
	h.failures++
	h.lastErr = err.Error()
	if c.failures == nil {
		c.failures = map[string]int{}
	}
	c.failures[class]++
	c.mu.Unlock()
}

// noteStage records one dispatched stage's progress for /fleet.
func (c *Coordinator) noteStage(stage string, shards, merged, entries int) {
	c.mu.Lock()
	if c.stages == nil {
		c.stages = map[string]*StageProgress{}
	}
	s := c.stages[stage]
	if s == nil {
		s = &StageProgress{Stage: stage}
		c.stages[stage] = s
	}
	s.Shards = shards
	s.Merged = merged
	s.Entries = entries
	c.mu.Unlock()
}

// FleetReport assembles the current fleet view. Worker and stage rows
// are sorted by name, so the report is deterministic given the same
// state.
func (c *Coordinator) FleetReport() *FleetReport {
	now := time.Now()
	c.mu.Lock()
	r := &FleetReport{TraceID: c.TraceID}
	names := make([]string, 0, len(c.health))
	for name := range c.health {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := c.health[name]
		row := WorkerHealth{
			Name:                    name,
			Kind:                    h.kind,
			Addr:                    h.addr,
			MetricsAddr:             h.metricsAddr,
			Live:                    !c.retired[name],
			ShardsDone:              h.shards,
			Visits:                  h.visits,
			Failures:                h.failures,
			LastError:               h.lastErr,
			Spans:                   len(h.spans),
			Telemetry:               telemetryStatus(h),
			LastHeartbeatAgeSeconds: -1,
		}
		if !h.lastBeat.IsZero() {
			row.LastHeartbeatAgeSeconds = now.Sub(h.lastBeat).Seconds()
		}
		r.Workers = append(r.Workers, row)
	}
	stageNames := make([]string, 0, len(c.stages))
	for name := range c.stages {
		stageNames = append(stageNames, name)
	}
	sort.Strings(stageNames)
	for _, name := range stageNames {
		r.Stages = append(r.Stages, *c.stages[name])
	}
	if len(c.failures) > 0 {
		r.Failures = make(map[string]int, len(c.failures))
		for class, n := range c.failures {
			r.Failures[class] = n
		}
	}
	c.mu.Unlock()
	r.Live, r.Retired = c.Workers()
	return r
}

// telemetryStatus summarizes a worker's telemetry return path; see
// WorkerHealth.Telemetry.
func telemetryStatus(h *workerHealth) string {
	switch {
	case h.kind == "local":
		return "inline"
	case h.withTel > 0 && h.withoutTel == 0:
		return "ok"
	case h.withTel == 0 && h.withoutTel == 0:
		return "none"
	default:
		return "partial"
	}
}

// refreshFleetMetrics re-derives the scrape-time fleet gauges: fleet
// size and per-worker heartbeat age. Called by the metrics and fleet
// handlers so a scrape always sees current values.
func (c *Coordinator) refreshFleetMetrics() {
	c.updateFleetGauges()
	now := time.Now()
	c.mu.Lock()
	type beat struct {
		name string
		age  float64
	}
	beats := make([]beat, 0, len(c.health))
	for name, h := range c.health {
		if !h.lastBeat.IsZero() {
			beats = append(beats, beat{name, now.Sub(h.lastBeat).Seconds()})
		}
	}
	c.mu.Unlock()
	for _, b := range beats {
		c.reg.Gauge(metricFleetHeartbeat, "worker", b.name).Set(b.age)
	}
}

// FleetHandler serves the /fleet report as JSON.
func (c *Coordinator) FleetHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.refreshFleetMetrics()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.FleetReport())
	}
}

// MetricsHandler serves the coordinator registry — its own instruments
// plus everything federated from worker telemetry — as Prometheus text
// exposition, refreshing the scrape-time fleet gauges first.
func (c *Coordinator) MetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.refreshFleetMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.reg.WriteExposition(w)
	}
}

// TraceProcesses assembles the merged fleet trace's process rows: the
// coordinator's own spans as process 1, each worker's accumulated spans
// as its own process, ordered by worker name so pids are stable.
func (c *Coordinator) TraceProcesses(coordinatorSpans []obs.SpanRecord) []obs.TraceProcess {
	procs := []obs.TraceProcess{{Name: "coordinator", PID: 1, Spans: coordinatorSpans}}
	c.mu.Lock()
	names := make([]string, 0, len(c.health))
	for name, h := range c.health {
		if len(h.spans) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for i, name := range names {
		procs = append(procs, obs.TraceProcess{
			Name:  name,
			PID:   i + 2,
			Spans: append([]obs.SpanRecord(nil), c.health[name].spans...),
		})
	}
	c.mu.Unlock()
	return procs
}

// TraceHandler serves the merged fleet trace — coordinator plus worker
// process rows — as a Chrome trace-event document.
func (c *Coordinator) TraceHandler(tr *obs.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="fleet-trace.json"`)
		_ = obs.WriteChromeTraceProcesses(w, c.TraceProcesses(tr.Recent()))
	}
}
