package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/resilience"
)

// Coordinator metric names. Constant snake_case with the suffix
// conventions the dashboards key on.
const (
	metricDispatch      = "shard_dispatch_total"
	metricReassigned    = "shard_reassigned_total"
	metricRetired       = "shard_workers_retired_total"
	metricResultsMerged = "shard_results_merged_total"
	metricEntriesMerged = "shard_entries_merged_total"
	metricRegistered    = "shard_workers_registered_total"
)

// Coordinator owns one crawl's worker fleet: a registry of local and
// remote workers (remote ones announce themselves on the /register
// listener), a round-based dispatcher that ships shard assignments to
// the fleet and reassigns the shards of failed workers to survivors,
// and the merger that folds per-shard results back together
// order-independently.
type Coordinator struct {
	// MinWorkers is how many workers WaitWorkers blocks for.
	MinWorkers int
	// Client and Ctrl are shared by every RemoteWorker the registration
	// listener mints.
	Client *http.Client
	Ctrl   *resilience.Controller

	// Tracer, TraceID and Flight wire the fleet observability plane.
	// When Tracer is set, Dispatch opens one span per assignment and
	// propagates (TraceID, span ID) inside it, so worker spans stitch
	// under the coordinator's causal tree. Flight, when set, receives
	// the flight events workers return, stamped with worker/shard
	// identity. TelemetryOff stops asking workers for telemetry — the
	// knob the byte-identity invariant is tested against. All optional.
	Tracer       *obs.Tracer
	TraceID      string
	Flight       *obs.FlightRecorder
	TelemetryOff bool

	reg *obs.Registry

	mu sync.Mutex
	// guarded by mu
	workers []Worker
	// guarded by mu
	retired map[string]bool
	// guarded by mu
	closed bool
	// arrived is recreated on each registration; closed to wake waiters.
	// guarded by mu
	arrived chan struct{}
	// guarded by mu
	ln net.Listener
	// guarded by mu
	srv *http.Server

	// health, stages and failures back the /fleet report; see fleet.go.
	// guarded by mu
	health map[string]*workerHealth
	// guarded by mu
	stages map[string]*StageProgress
	// guarded by mu
	failures map[string]int

	metDispatch     *obs.Counter
	metReassigned   *obs.Counter
	metRetired      *obs.Counter
	metResults      *obs.Counter
	metEntries      *obs.Counter
	metRegistered   *obs.Counter
	metFleetLive    *obs.Gauge
	metFleetRetired *obs.Gauge
}

// NewCoordinator builds a coordinator registering its metrics with reg
// (nil is fine; instruments no-op).
func NewCoordinator(reg *obs.Registry) *Coordinator {
	reg.Describe(metricDispatch, "shard assignments dispatched to workers")
	reg.Describe(metricReassigned, "shards requeued after a worker failure")
	reg.Describe(metricRetired, "workers retired from the fleet after a failure")
	reg.Describe(metricResultsMerged, "per-shard results folded into the merge")
	reg.Describe(metricEntriesMerged, "serialized visit entries received from workers")
	reg.Describe(metricRegistered, "workers accepted by the registration listener")
	reg.Describe(metricFleetLive, "workers currently live in the fleet")
	reg.Describe(metricFleetRetired, "workers retired from the fleet")
	reg.Describe(metricFleetVisits, "visit entries merged per worker")
	reg.Describe(metricFleetHeartbeat, "seconds since each worker's last completed result or registration")
	return &Coordinator{
		reg:             reg,
		retired:         map[string]bool{},
		arrived:         make(chan struct{}),
		metDispatch:     reg.Counter(metricDispatch),
		metReassigned:   reg.Counter(metricReassigned),
		metRetired:      reg.Counter(metricRetired),
		metResults:      reg.Counter(metricResultsMerged),
		metEntries:      reg.Counter(metricEntriesMerged),
		metRegistered:   reg.Counter(metricRegistered),
		metFleetLive:    reg.Gauge(metricFleetLive),
		metFleetRetired: reg.Gauge(metricFleetRetired),
	}
}

// AddWorker registers a worker directly — the in-process path tests
// and benchmarks use.
func (c *Coordinator) AddWorker(w Worker) {
	c.mu.Lock()
	c.workers = append(c.workers, w)
	old := c.arrived
	c.arrived = make(chan struct{})
	c.mu.Unlock()
	c.metRegistered.Inc()
	kind, addr, metricsAddr := "local", "", ""
	if rw, ok := w.(*RemoteWorker); ok {
		kind, addr, metricsAddr = "remote", rw.Addr, rw.MetricsAddr
	}
	c.noteWorker(w.Name(), kind, addr, metricsAddr)
	close(old)
}

// Listen opens the registration endpoint on addr (use "127.0.0.1:0"
// for an ephemeral port): worker processes POST {name, addr} to
// /register and join the fleet as RemoteWorkers.
func (c *Coordinator) Listen(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.ln != nil {
		return fmt.Errorf("shard: coordinator already listening on %s", c.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: coordinator listen %s: %w", addr, err)
	}
	c.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/register", c.handleRegister)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	c.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	srv := c.srv
	go func() { _ = srv.Serve(ln) }() // Serve always errors on Close; nothing to report
	return nil
}

// Addr returns the registration listener's bound address, or "" when
// not listening.
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// handleRegister admits one worker into the fleet.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var reg Registration
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&reg); err != nil {
		http.Error(w, fmt.Sprintf("bad registration: %v", err), http.StatusBadRequest)
		return
	}
	if reg.Name == "" || reg.Addr == "" {
		http.Error(w, "registration needs name and addr", http.StatusBadRequest)
		return
	}
	c.AddWorker(&RemoteWorker{Label: reg.Name, Addr: reg.Addr, MetricsAddr: reg.MetricsAddr,
		Client: c.Client, Ctrl: c.Ctrl})
	_, _ = io.WriteString(w, "registered\n")
}

// WaitWorkers blocks until at least n workers have joined (MinWorkers
// when n <= 0), or ctx expires.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	if n <= 0 {
		n = c.MinWorkers
	}
	if n <= 0 {
		n = 1
	}
	for {
		c.mu.Lock()
		have := len(c.workers)
		arrived := c.arrived
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-arrived:
		case <-ctx.Done():
			return fmt.Errorf("shard: waiting for %d workers, have %d: %w", n, have, ctx.Err())
		}
	}
}

// live returns the non-retired workers, in registration order.
func (c *Coordinator) live() []Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Worker, 0, len(c.workers))
	for _, w := range c.workers {
		if !c.retired[w.Name()] {
			out = append(out, w)
		}
	}
	return out
}

// retire removes a worker from the fleet.
func (c *Coordinator) retire(w Worker) {
	c.mu.Lock()
	already := c.retired[w.Name()]
	c.retired[w.Name()] = true
	c.mu.Unlock()
	if !already {
		c.metRetired.Inc()
	}
	c.updateFleetGauges()
}

// Workers reports fleet size as (live, retired).
func (c *Coordinator) Workers() (live, retired int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers) - len(c.retired), len(c.retired)
}

// Dispatch runs one stage's assignments to completion in waves: each
// wave deals at most one shard to each live worker and runs them in
// parallel (the fleet size, not the shard count, is the parallelism
// knob); a worker whose shard errors is retired and the shard requeued
// for the next wave; waves repeat until every shard has merged or the
// fleet is exhausted (ErrNoWorkers). Because each shard's result is a
// deterministic function of the assignment, a reassigned shard
// reproduces exactly the entries its first worker would have returned,
// so the merged output is independent of which workers survived.
func (c *Coordinator) Dispatch(ctx context.Context, assignments []Assignment) (*Merged, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	m := NewMerger(assignments)
	pending := make([]Assignment, len(assignments))
	copy(pending, assignments)
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shard: dispatch: %w", err)
		}
		fleet := c.live()
		if len(fleet) == 0 {
			return nil, fmt.Errorf("shard: %d shards unassigned: %w", len(pending), ErrNoWorkers)
		}

		wave := pending
		if len(wave) > len(fleet) {
			wave = pending[:len(fleet)]
		}
		type outcome struct {
			a   Assignment
			w   Worker
			res *Result
			err error
		}
		outcomes := make([]outcome, len(wave))
		var wg sync.WaitGroup
		for i, a := range wave {
			w := fleet[i]
			c.metDispatch.Inc()
			// Propagate trace context: the assignment carries the run
			// trace ID and this dispatch span's ID, so the worker's spans
			// parent under it in the merged trace. Telemetry asks the
			// worker to return its observability delta with the result.
			actx, span := c.Tracer.Start(ctx, "shard/dispatch")
			span.SetAttr("stage", a.Stage)
			span.SetAttr("shard", fmt.Sprintf("%d/%d", a.Shard, a.Shards))
			span.SetAttr("worker", w.Name())
			a.TraceID = c.TraceID
			a.ParentSpan = span.ID()
			a.Telemetry = !c.TelemetryOff
			wg.Add(1)
			go func(i int, a Assignment, w Worker, actx context.Context, span *obs.Span) {
				defer wg.Done()
				res, err := w.Run(actx, a)
				if err != nil {
					span.SetAttr("error", err.Error())
				}
				span.End()
				outcomes[i] = outcome{a: a, w: w, res: res, err: err}
			}(i, a, w, actx, span)
		}
		wg.Wait()

		requeue := append([]Assignment(nil), pending[len(wave):]...)
		for _, o := range outcomes {
			if o.err == nil {
				o.err = m.Send(o.res)
			}
			if o.err != nil {
				// The worker failed the shard — or answered with a result
				// that fails validation, which is just as disqualifying.
				// Retire it and give the shard to a survivor next round.
				c.noteFailure(o.w, o.err)
				c.retire(o.w)
				c.metReassigned.Inc()
				requeue = append(requeue, o.a)
				continue
			}
			c.metResults.Inc()
			c.metEntries.Add(uint64(len(o.res.Entries)))
			c.noteResult(o.w, o.a, o.res)
		}
		if _, err := m.Merge(); err != nil {
			return nil, err
		}
		pending = requeue
	}
	merged, err := m.Finish()
	if err == nil && len(assignments) > 0 {
		c.noteStage(assignments[0].Stage, len(assignments), len(merged.Shards), merged.Count)
	}
	return merged, err
}

// Close retires the registration listener and asks every live remote
// worker process to exit — best-effort with a bounded deadline, so
// shardci and interrupted runs leave no stray processes behind.
// Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	srv := c.srv
	c.srv = nil
	c.ln = nil
	var remotes []*RemoteWorker
	for _, w := range c.workers {
		if rw, ok := w.(*RemoteWorker); ok && !c.retired[w.Name()] {
			remotes = append(remotes, rw)
		}
	}
	c.mu.Unlock()
	if !alreadyClosed {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, rw := range remotes {
			_ = rw.Shutdown(ctx) // a worker that already died satisfies the intent
		}
	}
	if srv == nil {
		return nil
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shard: coordinator close: %w", err)
	}
	return nil
}
