package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"pornweb/internal/domain"
	"pornweb/internal/obs"
	"pornweb/internal/resilience"
)

// fakeRunner is a deterministic Runner: every host maps to the same
// entry bytes on every call, so reassigned shards reproduce their
// results exactly as a real study worker would.
type fakeRunner struct {
	mu     sync.Mutex
	visits int
}

func (f *fakeRunner) RunShard(ctx context.Context, a Assignment, kill *KillSwitch) (*Result, error) {
	r := &Result{Stage: a.Stage, Shard: a.Shard}
	for _, h := range a.Hosts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := kill.Visit(); err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.visits++
		f.mu.Unlock()
		r.Entries = append(r.Entries, Entry{Site: h, Raw: []byte("entry\x00for:" + h)})
	}
	r.SortEntries()
	r.Digest = r.ComputeDigest()
	return r, nil
}

func testHosts(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("site%03d.example%d.com", i, i%7)
	}
	return hosts
}

func testAssignments(hosts []string, shards int) []Assignment {
	parts := Partition(hosts, shards)
	out := make([]Assignment, len(parts))
	for i, p := range parts {
		out[i] = Assignment{
			Stage: "crawl/test", Corpus: "porn", Vantage: "ES",
			Shard: i, Shards: shards, Fingerprint: "fp", Seed: 1, Hosts: p,
		}
	}
	return out
}

func TestPartition(t *testing.T) {
	hosts := testHosts(100)

	parts := Partition(hosts, 4)
	if len(parts) != 4 {
		t.Fatalf("Partition returned %d shards, want 4", len(parts))
	}
	again := Partition(hosts, 4)
	if !reflect.DeepEqual(parts, again) {
		t.Error("Partition is not deterministic across calls")
	}

	// Every host lands in exactly one shard, order preserved within it.
	seen := map[string]int{}
	for i, p := range parts {
		prev := -1
		for _, h := range p {
			seen[h]++
			idx := -1
			for j, orig := range hosts {
				if orig == h {
					idx = j
					break
				}
			}
			if idx < prev {
				t.Errorf("shard %d does not preserve caller host order", i)
			}
			prev = idx
		}
	}
	for _, h := range hosts {
		if seen[h] != 1 {
			t.Errorf("host %s appears in %d shards, want 1", h, seen[h])
		}
	}

	// Hosts sharing a registrable domain co-locate: a site's subresource
	// hosts ride with it.
	withSubs := []string{"www.alpha.com", "cdn.alpha.com", "tracker.alpha.com", "beta.org"}
	parts = Partition(withSubs, 8)
	var alphaShard = -1
	for i, p := range parts {
		for _, h := range p {
			if domain.Base(h) == "alpha.com" {
				if alphaShard == -1 {
					alphaShard = i
				} else if alphaShard != i {
					t.Errorf("alpha.com hosts split across shards %d and %d", alphaShard, i)
				}
			}
		}
	}

	// Degenerate shard counts collapse to one shard.
	if got := Partition(hosts, 0); len(got) != 1 || len(got[0]) != len(hosts) {
		t.Errorf("Partition(_, 0) = %d shards, want everything in 1", len(got))
	}
}

func TestKillSwitch(t *testing.T) {
	var nilSwitch *KillSwitch
	if err := nilSwitch.Visit(); err != nil {
		t.Errorf("nil KillSwitch.Visit() = %v, want nil", err)
	}
	if nilSwitch.Dead() {
		t.Error("nil KillSwitch reports dead")
	}

	k := &KillSwitch{After: 3}
	for i := 1; i <= 2; i++ {
		if err := k.Visit(); err != nil {
			t.Fatalf("visit %d: %v, want nil", i, err)
		}
	}
	if k.Dead() {
		t.Error("switch dead before the seeded visit")
	}
	if err := k.Visit(); !errors.Is(err, ErrWorkerKilled) {
		t.Fatalf("visit 3: %v, want ErrWorkerKilled", err)
	}
	if !k.Dead() {
		t.Error("switch not dead after firing")
	}
	// Dead stays dead: the worker never recovers.
	if err := k.Visit(); !errors.Is(err, ErrWorkerKilled) {
		t.Errorf("visit after death: %v, want ErrWorkerKilled", err)
	}

	exited := 0
	ke := &KillSwitch{After: 1, Exit: func(code int) {
		exited = code
	}}
	if err := ke.Visit(); !errors.Is(err, ErrWorkerKilled) {
		t.Fatalf("Visit with Exit: %v, want ErrWorkerKilled", err)
	}
	if exited != 137 {
		t.Errorf("Exit called with %d, want 137", exited)
	}
}

func TestMergerOrderIndependent(t *testing.T) {
	hosts := testHosts(60)
	run := &fakeRunner{}
	assignments := testAssignments(hosts, 4)

	results := make([]*Result, len(assignments))
	for i, a := range assignments {
		r, err := run.RunShard(context.Background(), a, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}

	mergeIn := func(order []int) *Merged {
		m := NewMerger(assignments)
		for _, i := range order {
			if err := m.Send(results[i]); err != nil {
				t.Fatalf("Send shard %d: %v", i, err)
			}
		}
		out, err := m.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	fwd := mergeIn([]int{0, 1, 2, 3})
	rev := mergeIn([]int{3, 2, 1, 0})
	if fwd.Digest != rev.Digest {
		t.Errorf("merge digest depends on arrival order: %s vs %s", fwd.Digest, rev.Digest)
	}
	if !reflect.DeepEqual(fwd.Entries, rev.Entries) {
		t.Error("merged entries depend on arrival order")
	}
	if !reflect.DeepEqual(fwd.Shards, rev.Shards) {
		t.Error("shard manifest rows depend on arrival order")
	}
	if fwd.Count != len(hosts) {
		t.Errorf("merged %d entries, want %d", fwd.Count, len(hosts))
	}
}

func TestMergerRejects(t *testing.T) {
	hosts := testHosts(20)
	run := &fakeRunner{}
	assignments := testAssignments(hosts, 2)
	r0, err := run.RunShard(context.Background(), assignments[0], nil)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMerger(assignments)
	if err := m.Send(r0); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	if err := m.Send(r0); !errors.Is(err, ErrDuplicateShard) {
		t.Errorf("duplicate Send: %v, want ErrDuplicateShard", err)
	}
	if _, err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(r0); !errors.Is(err, ErrDuplicateShard) {
		t.Errorf("Send after merge: %v, want ErrDuplicateShard", err)
	}

	unknown := &Result{Stage: "crawl/test", Shard: 9}
	if err := m.Send(unknown); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown shard Send: %v, want ErrBadFrame", err)
	}

	// A tampered entry must fail the digest re-derivation.
	r1, err := run.RunShard(context.Background(), assignments[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Entries) == 0 {
		t.Fatal("shard 1 is empty; enlarge the host list")
	}
	r1.Entries[0].Raw = append([]byte(nil), "tampered"...)
	if err := m.Send(r1); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("tampered Send: %v, want ErrDigestMismatch", err)
	}

	// An entry outside the assigned host set is rejected even if the
	// digest is internally consistent.
	stray := &Result{Stage: "crawl/test", Shard: 1,
		Entries: []Entry{{Site: "not-assigned.example.com", Raw: []byte("x")}}}
	stray.Digest = stray.ComputeDigest()
	if err := m.Send(stray); !errors.Is(err, ErrBadFrame) {
		t.Errorf("stray-site Send: %v, want ErrBadFrame", err)
	}

	if _, err := m.Finish(); err == nil {
		t.Error("Finish with a missing shard did not error")
	}
	if got := m.Missing(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Missing() = %v, want [1]", got)
	}
}

func TestCoordinatorDispatch(t *testing.T) {
	hosts := testHosts(40)
	run := &fakeRunner{}
	assignments := testAssignments(hosts, 4)

	c := NewCoordinator(obs.NewRegistry())
	for i := 0; i < 3; i++ {
		c.AddWorker(&LocalWorker{Label: fmt.Sprintf("w%d", i), Runner: run})
	}
	merged, err := c.Dispatch(context.Background(), assignments)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != len(hosts) {
		t.Fatalf("dispatch merged %d entries, want %d", merged.Count, len(hosts))
	}
	if len(merged.Shards) != 4 {
		t.Fatalf("dispatch produced %d shard rows, want 4", len(merged.Shards))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dispatch(context.Background(), assignments); !errors.Is(err, ErrClosed) {
		t.Errorf("Dispatch after Close: %v, want ErrClosed", err)
	}
}

func TestCoordinatorReassignment(t *testing.T) {
	hosts := testHosts(40)
	run := &fakeRunner{}
	assignments := testAssignments(hosts, 3)

	// Baseline: an all-healthy fleet.
	healthy := NewCoordinator(obs.NewRegistry())
	for i := 0; i < 3; i++ {
		healthy.AddWorker(&LocalWorker{Label: fmt.Sprintf("w%d", i), Runner: run})
	}
	want, err := healthy.Dispatch(context.Background(), assignments)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}

	// Same fleet, but worker 0 dies mid-shard.
	reg := obs.NewRegistry()
	faulty := NewCoordinator(reg)
	faulty.AddWorker(&LocalWorker{Label: "w0", Runner: run, Kill: &KillSwitch{After: 2}})
	faulty.AddWorker(&LocalWorker{Label: "w1", Runner: run})
	faulty.AddWorker(&LocalWorker{Label: "w2", Runner: run})
	got, err := faulty.Dispatch(context.Background(), assignments)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Close(); err != nil {
		t.Fatal(err)
	}

	if got.Digest != want.Digest {
		t.Errorf("recovered dispatch digest %s, healthy %s", got.Digest, want.Digest)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Error("recovered dispatch entries differ from healthy run")
	}
	if live, retired := faulty.Workers(); retired != 1 || live != 2 {
		t.Errorf("fleet after recovery: %d live, %d retired; want 2 live, 1 retired", live, retired)
	}
	if n := reg.Counter(metricReassigned).Value(); n == 0 {
		t.Error("no shards counted as reassigned")
	}
	if n := reg.Counter(metricRetired).Value(); n != 1 {
		t.Errorf("%d workers counted retired, want 1", n)
	}

	// A fleet that dies entirely surfaces ErrNoWorkers, not a hang.
	doomed := NewCoordinator(obs.NewRegistry())
	doomed.AddWorker(&LocalWorker{Label: "d0", Runner: run, Kill: &KillSwitch{After: 1}})
	if _, err := doomed.Dispatch(context.Background(), assignments); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("exhausted fleet: %v, want ErrNoWorkers", err)
	}
	if err := doomed.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteLoopback(t *testing.T) {
	hosts := testHosts(30)
	run := &fakeRunner{}
	assignments := testAssignments(hosts, 2)

	// Serial truth to compare the remote dispatch against.
	serial := NewMerger(assignments)
	for _, a := range assignments {
		r, err := run.RunShard(context.Background(), a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := serial.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := serial.Finish()
	if err != nil {
		t.Fatal(err)
	}

	ctrl := resilience.NewController(resilience.Policy{MaxAttempts: 5, Seed: 1,
		BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond})
	client := &http.Client{Timeout: 10 * time.Second}

	coord := NewCoordinator(obs.NewRegistry())
	coord.Client = client
	coord.Ctrl = ctrl
	if err := coord.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := coord.Close(); err != nil {
			t.Error(err)
		}
	}()

	var servers []*Server
	for i := 0; i < 2; i++ {
		srv := &Server{Label: fmt.Sprintf("remote%d", i), Runner: run, Fingerprint: "fp", Seed: 1}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer func(s *Server) {
			if err := s.Close(); err != nil {
				t.Error(err)
			}
		}(srv)
		servers = append(servers, srv)
		if err := Register(context.Background(), client, ctrl, coord.Addr(),
			Registration{Name: srv.Label, Addr: srv.Addr()}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	got, err := coord.Dispatch(ctx, assignments)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != want.Digest {
		t.Errorf("remote dispatch digest %s, serial %s", got.Digest, want.Digest)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Error("remote dispatch entries differ from serial merge")
	}

	// A worker built for a different study refuses foreign work with a
	// fingerprint conflict, never a silent wrong answer.
	foreign := assignments[0]
	foreign.Fingerprint = "other-config"
	w := &RemoteWorker{Label: "remote0", Addr: servers[0].Addr(), Client: client, Ctrl: ctrl}
	if _, err := w.Run(ctx, foreign); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("foreign assignment: %v, want ErrFingerprintMismatch", err)
	}

	// Shutdown flips the server's Done channel for the worker main loop.
	if err := w.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-servers[0].Done():
	case <-ctx.Done():
		t.Error("Done() not closed after Shutdown")
	}
}
