package shard

import (
	"fmt"
	"slices"
	"sync"

	"pornweb/internal/provenance"
)

// Merger is the coordinator's result-ingestion queue, in the
// queue-in/batch/drain-and-reset shape: worker goroutines Send results
// as shards complete (validated, then parked in a pending queue under
// the mutex), and Merge atomically swaps the queue out, resets it, and
// folds the drained batch into the accumulated merge state. Because
// shard host sets are disjoint and the digest is a commutative
// multiset sum, the merged state is independent of arrival order —
// workers may finish in any interleaving and the fold lands on the
// same bytes.
type Merger struct {
	mu sync.Mutex
	// guarded by mu
	pending []*Result
	// byShard maps shard index to the assignment its result must answer.
	// guarded by mu
	byShard map[int]Assignment
	// merged holds folded results by shard index.
	// guarded by mu
	merged map[int]*Result
	// guarded by mu
	entries int
	// guarded by mu
	digest provenance.MultisetHash
}

// NewMerger builds a merger for one dispatch. expect registers, per
// shard index, the assignment a result must validate against.
func NewMerger(expect []Assignment) *Merger {
	m := &Merger{byShard: make(map[int]Assignment, len(expect)), merged: map[int]*Result{}}
	for _, a := range expect {
		m.byShard[a.Shard] = a
	}
	return m
}

// Send validates one shard result — known shard, assigned sites only,
// digest re-derived and matched against the worker's claim — and
// queues it for the next Merge. A duplicate result for an
// already-merged or already-queued shard is an accounting bug and is
// rejected, never silently folded twice.
func (m *Merger) Send(r *Result) error {
	m.mu.Lock()
	a, ok := m.byShard[r.Shard]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("shard: result for unknown shard %d: %w", r.Shard, ErrBadFrame)
	}
	if _, dup := m.merged[r.Shard]; dup {
		m.mu.Unlock()
		return fmt.Errorf("shard: shard %d already merged: %w", r.Shard, ErrDuplicateShard)
	}
	for _, q := range m.pending {
		if q.Shard == r.Shard {
			m.mu.Unlock()
			return fmt.Errorf("shard: shard %d already queued: %w", r.Shard, ErrDuplicateShard)
		}
	}
	m.mu.Unlock()

	// Validation (a full digest recompute) runs outside the lock so slow
	// verification never serializes the worker goroutines.
	if err := r.validate(a); err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.merged[r.Shard]; dup {
		return fmt.Errorf("shard: shard %d already merged: %w", r.Shard, ErrDuplicateShard)
	}
	m.pending = append(m.pending, r)
	return nil
}

// Merge drains the pending queue — swap, reset, fold — and returns how
// many results the batch folded in. Safe to call concurrently with
// Send; each queued result is folded exactly once.
func (m *Merger) Merge() (int, error) {
	m.mu.Lock()
	batch := m.pending
	m.pending = nil
	for _, r := range batch {
		if _, dup := m.merged[r.Shard]; dup {
			m.mu.Unlock()
			return 0, fmt.Errorf("shard: shard %d already merged: %w", r.Shard, ErrDuplicateShard)
		}
		m.merged[r.Shard] = r
		m.entries += len(r.Entries)
		var part provenance.MultisetHash
		for _, e := range r.Entries {
			part.Add(e.Site + "\x1f" + string(e.Raw))
		}
		m.digest.Merge(&part)
	}
	m.mu.Unlock()
	return len(batch), nil
}

// Complete reports whether every expected shard has been merged.
func (m *Merger) Complete() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.merged) == len(m.byShard) && len(m.pending) == 0
}

// Missing lists the shard indexes not yet merged or queued, sorted.
func (m *Merger) Missing() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	queued := map[int]bool{}
	for _, r := range m.pending {
		queued[r.Shard] = true
	}
	var out []int
	for i := range m.byShard {
		if _, ok := m.merged[i]; !ok && !queued[i] {
			out = append(out, i)
		}
	}
	slices.Sort(out)
	return out
}

// Merged is the outcome of a completed dispatch: every entry of every
// shard keyed by site, plus the per-shard digests and the combined
// multiset digest over all entries for the shard manifest sidecar.
type Merged struct {
	// Entries maps site to its serialized visit entry.
	Entries map[string][]byte
	// Shards holds one info row per shard, ordered by shard index.
	Shards []provenance.ShardInfo
	// Entries folded, and the combined order-independent digest.
	Count  int
	Digest string
}

// Finish asserts completeness and assembles the merged view. It is the
// only accessor; calling it before every shard has merged is an error.
func (m *Merger) Finish() (*Merged, error) {
	if _, err := m.Merge(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.merged) != len(m.byShard) {
		return nil, fmt.Errorf("shard: merge incomplete: %d/%d shards", len(m.merged), len(m.byShard))
	}
	out := &Merged{
		Entries: make(map[string][]byte, m.entries),
		Count:   m.entries,
		Digest:  m.digest.Sum(),
	}
	shards := make([]int, 0, len(m.merged))
	for i := range m.merged {
		shards = append(shards, i)
	}
	slices.Sort(shards)
	for _, i := range shards {
		r := m.merged[i]
		for _, e := range r.Entries {
			out.Entries[e.Site] = e.Raw
		}
		out.Shards = append(out.Shards, provenance.ShardInfo{
			Shard:   i,
			Hosts:   len(m.byShard[i].Hosts),
			Entries: len(r.Entries),
			Digest:  r.Digest,
		})
	}
	return out, nil
}
