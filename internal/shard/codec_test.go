package shard

import (
	"errors"
	"reflect"
	"testing"
)

func testAssignment() *Assignment {
	return &Assignment{
		Stage: "crawl/porn-ES", Corpus: "porn", Vantage: "ES",
		Shard: 2, Shards: 4, Fingerprint: "0011223344556677", Seed: 42,
		Hosts: []string{"a.example.com", "b.example.org"},
	}
}

func testResult() *Result {
	r := &Result{
		Stage: "crawl/porn-ES", Shard: 2, Worker: "w1",
		Entries: []Entry{
			{Site: "b.example.org", Raw: []byte("raw\x00bytes")},
			{Site: "a.example.com", Raw: []byte(`{"page":{}}`)},
		},
	}
	r.SortEntries()
	r.Digest = r.ComputeDigest()
	return r
}

func TestCodecRoundTrip(t *testing.T) {
	a := testAssignment()
	frame, err := EncodeAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAssignment(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Errorf("assignment round-trip: got %+v, want %+v", back, a)
	}

	r := testResult()
	frame, err = EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := DecodeResult(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, rback) {
		t.Errorf("result round-trip: got %+v, want %+v", rback, r)
	}
	// Equal results encode to equal bytes: the wire form is canonical.
	again, err := EncodeResult(testResult())
	if err != nil {
		t.Fatal(err)
	}
	if string(frame) != string(again) {
		t.Error("equal results encoded to different bytes")
	}
}

func TestCodecRejectsDamage(t *testing.T) {
	frame, err := EncodeResult(testResult())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"torn header", frame[:6]},
		{"torn payload", frame[:len(frame)/2]},
		{"truncated tail", frame[:len(frame)-1]},
		{"trailing garbage", append(append([]byte(nil), frame...), 0xff)},
		{"bad magic", mutate(frame, 0)},
		{"wrong type", mutate(frame, 4)},
		{"corrupt length", mutate(frame, 5)},
		{"flipped payload bit", mutate(frame, 15)},
		{"corrupt crc", mutate(frame, len(frame)-1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeResult(c.b); !errors.Is(err, ErrBadFrame) {
				t.Errorf("DecodeResult(%s) = %v, want ErrBadFrame", c.name, err)
			}
		})
	}

	// A result frame is not an assignment frame.
	if _, err := DecodeAssignment(frame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("DecodeAssignment(result frame) = %v, want ErrBadFrame", err)
	}

	// A frame whose length field claims more than the cap is rejected
	// before any allocation.
	huge := append([]byte(nil), frame...)
	huge[5], huge[6], huge[7], huge[8] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeResult(huge); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized length claim: %v, want ErrBadFrame", err)
	}

	// Valid framing around an unparsable payload still errors: CRC
	// protects transport, JSON protects structure.
	bad, err := encodeFrame(typeResult, "not a result object")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(bad); !errors.Is(err, ErrBadFrame) {
		t.Errorf("non-object payload: %v, want ErrBadFrame", err)
	}
}

// mutate flips one bit of b at index i, copying first.
func mutate(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x01
	return out
}
