package shard

import (
	"errors"
	"reflect"
	"testing"

	"pornweb/internal/obs"
)

func testAssignment() *Assignment {
	return &Assignment{
		Stage: "crawl/porn-ES", Corpus: "porn", Vantage: "ES",
		Shard: 2, Shards: 4, Fingerprint: "0011223344556677", Seed: 42,
		Hosts:   []string{"a.example.com", "b.example.org"},
		TraceID: "run-0011223344556677-42", ParentSpan: 7, Telemetry: true,
	}
}

func testResult() *Result {
	r := &Result{
		Stage: "crawl/porn-ES", Shard: 2, Worker: "w1",
		Entries: []Entry{
			{Site: "b.example.org", Raw: []byte("raw\x00bytes")},
			{Site: "a.example.com", Raw: []byte(`{"page":{}}`)},
		},
		Telemetry: &Telemetry{
			Worker:      "w1",
			MetricsAddr: "127.0.0.1:9999",
			TraceID:     "run-0011223344556677-42",
			Metrics: &obs.Snapshot{Points: []obs.SnapshotPoint{
				{Name: "visits_total", Kind: "counter", Count: 2},
			}},
			Spans: []obs.SpanRecord{
				{Name: "shard/run", TraceID: "run-0011223344556677-42"},
			},
			Flight: []obs.VisitEvent{
				{Site: "a.example.com", Worker: "w1", Shard: 2},
			},
		},
	}
	r.SortEntries()
	r.Digest = r.ComputeDigest()
	return r
}

func TestCodecRoundTrip(t *testing.T) {
	a := testAssignment()
	frame, err := EncodeAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAssignment(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Errorf("assignment round-trip: got %+v, want %+v", back, a)
	}

	r := testResult()
	frame, err = EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := DecodeResult(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, rback) {
		t.Errorf("result round-trip: got %+v, want %+v", rback, r)
	}
	// Equal results encode to equal bytes: the wire form is canonical.
	again, err := EncodeResult(testResult())
	if err != nil {
		t.Fatal(err)
	}
	if string(frame) != string(again) {
		t.Error("equal results encoded to different bytes")
	}
}

func TestCodecRejectsDamage(t *testing.T) {
	frame, err := EncodeResult(testResult())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"torn header", frame[:6]},
		{"torn payload", frame[:len(frame)/2]},
		{"truncated tail", frame[:len(frame)-1]},
		{"trailing garbage", append(append([]byte(nil), frame...), 0xff)},
		{"bad magic", mutate(frame, 0)},
		{"wrong type", mutate(frame, 4)},
		{"corrupt length", mutate(frame, 5)},
		{"flipped payload bit", mutate(frame, 15)},
		{"corrupt crc", mutate(frame, len(frame)-1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeResult(c.b); !errors.Is(err, ErrBadFrame) {
				t.Errorf("DecodeResult(%s) = %v, want ErrBadFrame", c.name, err)
			}
		})
	}

	// A result frame is not an assignment frame.
	if _, err := DecodeAssignment(frame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("DecodeAssignment(result frame) = %v, want ErrBadFrame", err)
	}

	// A frame whose length field claims more than the cap is rejected
	// before any allocation.
	huge := append([]byte(nil), frame...)
	huge[5], huge[6], huge[7], huge[8] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeResult(huge); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized length claim: %v, want ErrBadFrame", err)
	}

	// Valid framing around an unparsable payload still errors: CRC
	// protects transport, JSON protects structure.
	bad, err := encodeFrame(typeResult, "not a result object")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(bad); !errors.Is(err, ErrBadFrame) {
		t.Errorf("non-object payload: %v, want ErrBadFrame", err)
	}
}

// TestCodecBackwardCompatible proves the telemetry fields are a
// compatible extension of the wire format: frames from a peer that
// predates them (no trace context, no telemetry sidecar) still decode,
// and frames that omit telemetry round-trip without growing phantom
// fields. This is the versioning seam — all new fields are omitempty.
func TestCodecBackwardCompatible(t *testing.T) {
	a := testAssignment()
	a.TraceID, a.ParentSpan, a.Telemetry = "", 0, false
	frame, err := EncodeAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAssignment(frame)
	if err != nil {
		t.Fatalf("v0-style assignment frame rejected: %v", err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Errorf("v0 assignment round-trip: got %+v, want %+v", back, a)
	}

	r := testResult()
	r.Telemetry = nil
	rframe, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := DecodeResult(rframe)
	if err != nil {
		t.Fatalf("v0-style result frame rejected: %v", err)
	}
	if rback.Telemetry != nil {
		t.Errorf("telemetry-free frame decoded with telemetry: %+v", rback.Telemetry)
	}
}

// TestDigestIgnoresTelemetry pins the sidecar invariant at the wire
// layer: the result digest covers data entries only, so shipping (or
// losing) telemetry can never change what the coordinator verifies.
func TestDigestIgnoresTelemetry(t *testing.T) {
	with := testResult()
	without := testResult()
	without.Telemetry = nil
	if with.ComputeDigest() != without.ComputeDigest() {
		t.Error("digest changed when telemetry sidecar was dropped")
	}
}

// mutate flips one bit of b at index i, copying first.
func mutate(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x01
	return out
}
