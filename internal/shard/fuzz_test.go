package shard

import (
	"reflect"
	"testing"
)

// FuzzShardCodec hammers the wire-protocol decoders with arbitrary
// bytes. The decoders sit on every coordinator/worker hop, fed by a
// network; the contract is that torn, truncated, or corrupt frames
// error (ErrBadFrame) and never panic, and that any frame a decoder
// does accept round-trips: re-encoding the decoded message and
// decoding again yields the same message, so nothing decodes to
// phantom data the encoder could not have produced.
func FuzzShardCodec(f *testing.F) {
	if frame, err := EncodeAssignment(testAssignment()); err == nil {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		f.Add(mutate(frame, len(frame)/2))
	}
	if frame, err := EncodeResult(testResult()); err == nil {
		f.Add(frame)
		f.Add(frame[:frameOverhead])
		f.Add(mutate(frame, 0))
		f.Add(mutate(frame, 4))
		f.Add(mutate(frame, len(frame)-1))
	}
	// Telemetry-free peers are still on the wire; seed their shapes too.
	bare := testAssignment()
	bare.TraceID, bare.ParentSpan, bare.Telemetry = "", 0, false
	if frame, err := EncodeAssignment(bare); err == nil {
		f.Add(frame)
	}
	bareRes := testResult()
	bareRes.Telemetry = nil
	if frame, err := EncodeResult(bareRes); err == nil {
		f.Add(frame)
		f.Add(mutate(frame, len(frame)/3))
	}
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	f.Add([]byte("PWS1\x01\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := DecodeAssignment(data); err == nil {
			frame, err := EncodeAssignment(a)
			if err != nil {
				t.Fatalf("re-encode accepted assignment: %v", err)
			}
			back, err := DecodeAssignment(frame)
			if err != nil {
				t.Fatalf("re-decode assignment: %v", err)
			}
			if !reflect.DeepEqual(a, back) {
				t.Errorf("assignment round-trip drift: %+v vs %+v", a, back)
			}
		}
		if r, err := DecodeResult(data); err == nil {
			// EncodeResult canonicalizes entry order; sort the accepted
			// message the same way before comparing.
			r.SortEntries()
			frame, err := EncodeResult(r)
			if err != nil {
				t.Fatalf("re-encode accepted result: %v", err)
			}
			back, err := DecodeResult(frame)
			if err != nil {
				t.Fatalf("re-decode result: %v", err)
			}
			if !reflect.DeepEqual(r, back) {
				t.Errorf("result round-trip drift: %+v vs %+v", r, back)
			}
		}
	})
}
