package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// The wire protocol: one message is one frame —
//
//	magic(4) "PWS1" | type(1) | length(4, BE) | payload | crc32(4, BE)
//
// with the CRC (IEEE) computed over type+length+payload so a bit flip
// anywhere in the frame is caught, and the payload a JSON rendering of
// the message struct. Frames travel as HTTP bodies between coordinator
// and workers; the CRC is defense in depth for torn writes and proxy
// truncation that HTTP content lengths miss, and it gives the fuzz
// target a hard contract: torn, truncated, or corrupt frames must
// error (ErrBadFrame), never panic, and never decode to phantom data.

const (
	frameMagic = "PWS1"
	// frameOverhead is every byte that is not payload.
	frameOverhead = 4 + 1 + 4 + 4
	// maxFramePayload caps a payload at 256 MiB so a corrupt length
	// field can never become an allocation bomb.
	maxFramePayload = 256 << 20

	typeAssignment byte = 1
	typeResult     byte = 2
)

// encodeFrame renders v as a framed message of the given type.
func encodeFrame(typ byte, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("shard: encode frame: %w", err)
	}
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("shard: encode frame: payload %d bytes exceeds cap", len(payload))
	}
	buf := make([]byte, 0, frameOverhead+len(payload))
	buf = append(buf, frameMagic...)
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4 : 4+1+4+len(payload)])
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return buf, nil
}

// decodeFrame verifies framing and returns the payload bytes.
func decodeFrame(b []byte, typ byte) ([]byte, error) {
	if len(b) < frameOverhead {
		return nil, fmt.Errorf("shard: frame truncated at %d bytes: %w", len(b), ErrBadFrame)
	}
	if string(b[:4]) != frameMagic {
		return nil, fmt.Errorf("shard: bad frame magic %q: %w", b[:4], ErrBadFrame)
	}
	if b[4] != typ {
		return nil, fmt.Errorf("shard: frame type %d, want %d: %w", b[4], typ, ErrBadFrame)
	}
	n := binary.BigEndian.Uint32(b[5:9])
	if n > maxFramePayload {
		return nil, fmt.Errorf("shard: frame claims %d payload bytes, cap %d: %w", n, maxFramePayload, ErrBadFrame)
	}
	if len(b) != frameOverhead+int(n) {
		return nil, fmt.Errorf("shard: frame holds %d bytes, header claims %d: %w",
			len(b), frameOverhead+int(n), ErrBadFrame)
	}
	payload := b[9 : 9+n]
	want := binary.BigEndian.Uint32(b[9+n:])
	if got := crc32.ChecksumIEEE(b[4 : 9+n]); got != want {
		return nil, fmt.Errorf("shard: frame CRC %08x, want %08x: %w", got, want, ErrBadFrame)
	}
	return payload, nil
}

// EncodeAssignment renders an assignment as one wire frame.
func EncodeAssignment(a *Assignment) ([]byte, error) {
	return encodeFrame(typeAssignment, a)
}

// DecodeAssignment parses a wire frame back into an assignment. Torn,
// truncated, or corrupt frames error with ErrBadFrame; they never
// panic and never yield a partial assignment.
func DecodeAssignment(b []byte) (*Assignment, error) {
	payload, err := decodeFrame(b, typeAssignment)
	if err != nil {
		return nil, err
	}
	var a Assignment
	if err := json.Unmarshal(payload, &a); err != nil {
		return nil, fmt.Errorf("shard: assignment payload: %v: %w", err, ErrBadFrame)
	}
	return &a, nil
}

// EncodeResult renders a result as one wire frame. Entries are sorted
// first so equal results encode to equal bytes.
func EncodeResult(r *Result) ([]byte, error) {
	r.SortEntries()
	return encodeFrame(typeResult, r)
}

// DecodeResult parses a wire frame back into a result, under the same
// contract as DecodeAssignment.
func DecodeResult(b []byte) (*Result, error) {
	payload, err := decodeFrame(b, typeResult)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("shard: result payload: %v: %w", err, ErrBadFrame)
	}
	return &r, nil
}
