// Package shard scales the crawl past one process: a coordinator
// partitions a crawl stage's host list by registrable domain into N
// shards, ships each shard as an assignment to a worker — in-process
// for tests and benchmarks, or a separate process over loopback HTTP —
// and merges the per-shard partial results order-independently into
// exactly what a serial crawl of the full host list would have
// produced. The proof obligation is `sharded == serial`, byte-identical
// at the run-manifest level; the equivalence harness at the repo root
// and the `make shardci` multi-process gate both enforce it.
//
// The design leans on two proven primitives. Workers return each
// completed visit in the durable store's serialized entry form (a pure
// function of seed, config and site), so the coordinator folds worker
// results back into a crawl stage through the same replay path a
// crash-resumed run uses — machinery the crash-safety gate already
// holds to byte-identity. And every shard carries an order-independent
// multiset digest over its entries, the commutative-merge verification
// primitive: the coordinator recomputes and checks it on ingestion
// (detecting wire corruption and nondeterministic workers), and the
// merged digests land in a per-run shard manifest sidecar.
//
// Worker failure is survivable: a worker whose assignment errors is
// retired from the fleet and its shard is reassigned to a surviving
// worker. Because a shard's result is deterministic, the recovered
// run's merged output — and therefore its manifest — is identical to
// an uninterrupted one. The seeded KillSwitch injects exactly this
// failure for the reassignment tests.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pornweb/internal/domain"
	"pornweb/internal/provenance"
)

// Typed errors. Callers branch on these with errors.Is.
var (
	// ErrBadFrame: a wire frame is torn, truncated, or corrupt (bad
	// magic, impossible length, CRC mismatch, unparsable payload).
	ErrBadFrame = errors.New("shard: bad frame")
	// ErrFingerprintMismatch: a worker was handed an assignment from a
	// study configuration it was not built for.
	ErrFingerprintMismatch = errors.New("shard: config fingerprint mismatch")
	// ErrDigestMismatch: a shard result's entries do not digest to the
	// digest the worker claimed — wire corruption past the CRC, or a
	// nondeterministic worker.
	ErrDigestMismatch = errors.New("shard: result digest mismatch")
	// ErrWorkerKilled: the seeded kill switch fired mid-shard.
	ErrWorkerKilled = errors.New("shard: worker killed by crash injection")
	// ErrNoWorkers: every worker has been retired and shards remain.
	ErrNoWorkers = errors.New("shard: no live workers remain")
	// ErrDuplicateShard: two results arrived for the same shard index of
	// one dispatch — a requeue accounting bug, never tolerated silently.
	ErrDuplicateShard = errors.New("shard: duplicate shard result")
	// ErrClosed: the coordinator has been closed.
	ErrClosed = errors.New("shard: coordinator closed")
)

// Assignment is one shard of one crawl stage: the unit of work a
// coordinator ships to a worker. Fingerprint and Seed bind the
// assignment to a study configuration exactly as the durable store's
// segment header does — a worker built from a different config refuses
// the work rather than silently measuring a different study.
type Assignment struct {
	// Stage is the pipeline stage name, e.g. "crawl/porn-ES".
	Stage string `json:"stage"`
	// Corpus is the corpus being crawled: "porn", "reference".
	Corpus string `json:"corpus"`
	// Vantage is the crawl's vantage country code.
	Vantage string `json:"vantage"`
	// Interactive selects the Selenium-analog interactive crawl instead
	// of the instrumented page crawl.
	Interactive bool `json:"interactive,omitempty"`
	// Shard is this assignment's index in [0, Shards).
	Shard int `json:"shard"`
	// Shards is the stage's total shard count.
	Shards int `json:"shards"`
	// Fingerprint is the study's config fingerprint; Seed its
	// generation seed. Workers verify both before crawling.
	Fingerprint string `json:"fingerprint"`
	Seed        int64  `json:"seed"`
	// Hosts is the shard's site list, in the stage's visit order.
	Hosts []string `json:"hosts"`
	// TraceID and ParentSpan propagate the coordinator's trace context:
	// the run-level trace ID and the dispatch span this assignment hangs
	// under, so the worker's spans stitch into the coordinator's causal
	// tree. Telemetry asks the worker to return its observability delta
	// in the Result. All three are omitempty, so a new coordinator's
	// frames decode cleanly on an old worker and vice versa — the codec's
	// JSON payload is the versioning seam.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan uint64 `json:"parent_span,omitempty"`
	Telemetry  bool   `json:"telemetry,omitempty"`
}

// Entry is one completed visit in its durable serialized form: the
// exact bytes the coordinator's store would persist for the site.
type Entry struct {
	Site string `json:"site"`
	Raw  []byte `json:"raw"`
}

// Result is a worker's answer to one assignment: every visit of the
// shard as a serialized entry, plus the order-independent multiset
// digest over them that the coordinator re-verifies on ingestion.
type Result struct {
	Stage string `json:"stage"`
	Shard int    `json:"shard"`
	// Worker names the worker that produced the result — volatile
	// (reassignment changes it), excluded from the digest.
	Worker string `json:"worker,omitempty"`
	// Entries is sorted by site so a result's wire encoding is
	// deterministic.
	Entries []Entry `json:"entries"`
	Digest  string  `json:"digest"`
	// Telemetry is the worker's observability sidecar for this shard —
	// metric deltas, sampled spans, flight events. Like Worker it is
	// volatile and excluded from the digest (ComputeDigest folds entries
	// only), so a truncated or absent snapshot degrades the fleet view
	// without touching data equivalence.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// ComputeDigest folds every entry into an order-independent multiset
// digest: the value workers stamp into Result.Digest and the merger
// re-derives to verify the wire payload.
func (r *Result) ComputeDigest() string {
	var m provenance.MultisetHash
	for _, e := range r.Entries {
		m.Add(e.Site + "\x1f" + string(e.Raw))
	}
	return m.Sum()
}

// SortEntries orders the entries by site, the canonical wire order.
func (r *Result) SortEntries() {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Site < r.Entries[j].Site })
}

// Partition splits hosts into n shards keyed by registrable domain:
// every host sharing an eTLD+1 lands in the same shard (one site's
// subresource hosts stay with it), assignment is a pure function of
// the domain — independent of host order, worker count, and previous
// dispatches — and each shard preserves the caller's host order. n < 1
// is treated as 1.
func Partition(hosts []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	out := make([][]string, n)
	for _, h := range hosts {
		i := int(provenance.HashString(domain.Base(h)) % uint64(n))
		out[i] = append(out[i], h)
	}
	return out
}

// KillSwitch injects a worker death at a seeded visit for the
// reassignment tests: the After-th visit the worker performs fails the
// whole assignment with ErrWorkerKilled, and every later assignment
// fails too — the worker is dead, exactly as a crashed process would
// be. With Exit set the process genuinely dies (the worker binary's
// -shard-kill-visits flag); with Exit nil the failure stays in-process
// so tests can kill and reassign without forking.
type KillSwitch struct {
	// After fires the kill on the After-th visit (1-based).
	After int
	// Exit, when non-nil, is called with status 137 when the kill fires.
	Exit func(code int)

	mu     sync.Mutex
	visits int
	dead   bool
}

// Visit records one visit against the switch and returns
// ErrWorkerKilled once the seeded kill has fired. A nil switch admits
// everything.
func (k *KillSwitch) Visit() error {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.dead {
		return ErrWorkerKilled
	}
	k.visits++
	if k.After > 0 && k.visits >= k.After {
		k.dead = true
		if k.Exit != nil {
			k.Exit(137)
		}
		return ErrWorkerKilled
	}
	return nil
}

// Dead reports whether the kill has fired.
func (k *KillSwitch) Dead() bool {
	if k == nil {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dead
}

// validate checks a result against its assignment before it may enter
// the merge: right stage and shard, sites within the assigned host
// set, and the digest the worker claimed.
func (r *Result) validate(a Assignment) error {
	if r.Stage != a.Stage || r.Shard != a.Shard {
		return fmt.Errorf("shard: result for %s/%d answers assignment %s/%d: %w",
			r.Stage, r.Shard, a.Stage, a.Shard, ErrBadFrame)
	}
	allowed := make(map[string]bool, len(a.Hosts))
	for _, h := range a.Hosts {
		allowed[h] = true
	}
	for _, e := range r.Entries {
		if !allowed[e.Site] {
			return fmt.Errorf("shard: result entry for unassigned site %q: %w", e.Site, ErrBadFrame)
		}
	}
	if got := r.ComputeDigest(); got != r.Digest {
		return fmt.Errorf("shard: %s shard %d digests %s, worker claimed %s: %w",
			r.Stage, r.Shard, got, r.Digest, ErrDigestMismatch)
	}
	return nil
}
