// Schedule-equivalence harness: the DAG scheduler must change wall-clock
// only, never results. The serial path (the historical stage order) is
// the reference schedule; the scheduled path must reproduce the exact
// same Results struct and a byte-identical rendered report at every
// worker count. Run under -race this also shakes out data races between
// concurrently scheduled stages.
package pornweb_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/report"
	"pornweb/internal/webgen"
)

// equivScale keeps the four full pipeline runs affordable in CI while
// staying large enough that registrable-domain collisions between
// long-tail asset hosts occur — scale 0.01 missed the cert-attribution
// tie-break bug that this harness exists to catch.
const equivScale = 0.02

// runPipeline executes the complete study once and renders the full
// report. Crawl Workers is deliberately concurrent: per-visit cookie
// jars and order-independent analyses make results insensitive to
// intra-crawl visit order, so equivalence must hold even when page
// visits within a stage interleave freely (this harness used to pin
// Workers to 1 before visit-order independence was established).
func runPipeline(t *testing.T, serial bool, stageWorkers int) (*core.Results, []byte) {
	t.Helper()
	st, err := core.NewStudy(core.Config{
		Params:       webgen.Params{Seed: 2019, Scale: equivScale},
		Workers:      8,
		StageWorkers: stageWorkers,
		Serial:       serial,
		Timeout:      20 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewStudy: %v", err)
	}
	defer st.Close()
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatalf("Run(serial=%v, stageWorkers=%d): %v", serial, stageWorkers, err)
	}
	var buf bytes.Buffer
	report.All(&buf, res)
	return res, buf.Bytes()
}

// TestScheduleEquivalence pins the scheduled pipeline to the serial
// reference: identical Results and byte-identical report for 1, 4 and 16
// stage workers.
func TestScheduleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline four times; skipped in -short")
	}
	refRes, refReport := runPipeline(t, true, 0)
	if len(refReport) == 0 {
		t.Fatal("serial reference rendered an empty report")
	}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, rep := runPipeline(t, false, workers)
			if !bytes.Equal(refReport, rep) {
				t.Errorf("rendered report diverged from serial reference (serial %d bytes, scheduled %d bytes)",
					len(refReport), len(rep))
				logFirstDiff(t, refReport, rep)
			}
			if !reflect.DeepEqual(refRes, res) {
				t.Error("Results struct diverged from serial reference")
			}
		})
	}
}

// logFirstDiff reports the first line where two renderings diverge, so a
// failure points at the offending table instead of a byte offset.
func logFirstDiff(t *testing.T, want, got []byte) {
	t.Helper()
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Logf("first divergence at line %d:\n  serial:    %q\n  scheduled: %q", i+1, wl[i], gl[i])
			return
		}
	}
	t.Logf("renderings agree for %d lines; lengths differ (serial %d lines, scheduled %d lines)", n, len(wl), len(gl))
}
