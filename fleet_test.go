// Fleet observability harness: the telemetry return path of a sharded
// crawl must be a pure sidecar. A remote fleet with telemetry on must
// federate every worker's metrics, spans and flight events into the
// coordinator's unified views — and whether telemetry is on, off, or
// partially lost, the merged results and the run manifest must stay
// byte-identical to a serial run. Observability may degrade; data may
// not.
package pornweb_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/obs"
	"pornweb/internal/resilience"
	"pornweb/internal/shard"
	"pornweb/internal/webgen"
)

// fleetScale keeps the multi-study fleet tests affordable: each remote
// worker rebuilds the whole ecosystem, so the corpus stays small.
const fleetScale = 0.004

// fleetBase is the config every fleet-test study derives from; the
// fingerprint-relevant fields must match between coordinator and
// workers or the workers refuse assignments.
func fleetBase() core.Config {
	return core.Config{
		Params:    webgen.Params{Seed: 11, Scale: fleetScale},
		Countries: []string{"ES", "US"},
		Workers:   4,
		Timeout:   10 * time.Second,
	}
}

// startFleetWorker builds one worker study (its own registry, tracer
// and flight recorder — a `pornstudy -worker` process in miniature),
// serves assignments on loopback, and registers with the coordinator.
// Passing withObs=false leaves the Server's observability plane unwired,
// the shape of a worker that predates (or lost) the telemetry path.
func startFleetWorker(t *testing.T, coordAddr, label string, withObs bool) *core.Study {
	t.Helper()
	wst, err := core.NewStudy(fleetBase())
	if err != nil {
		t.Fatalf("worker study: %v", err)
	}
	t.Cleanup(wst.Close)
	srv := &shard.Server{
		Label:       label,
		Runner:      wst,
		Fingerprint: wst.Fingerprint(),
		Seed:        int64(fleetBase().Params.Seed),
	}
	if withObs {
		srv.Registry = wst.Metrics
		srv.Tracer = wst.Tracer
		srv.Flight = wst.Flight
		srv.MetricsAddr = "127.0.0.1:0" // reported, not bound: the link is advisory
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("worker server: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("worker close: %v", err)
		}
	})
	ctrl := resilience.NewController(resilience.Policy{
		MaxAttempts: 5, Seed: 11,
		BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	if err := shard.Register(context.Background(), nil, ctrl, coordAddr,
		shard.Registration{Name: label, Addr: srv.Addr(), MetricsAddr: srv.MetricsAddr}); err != nil {
		t.Fatalf("register %s: %v", label, err)
	}
	return wst
}

// runFleet runs the full pipeline on a coordinator study with the given
// number of telemetry-bearing and telemetry-less remote workers, and
// returns the coordinator study (still open for fleet-view inspection)
// plus the manifest bytes.
func runFleet(t *testing.T, cfg core.Config, withObs, withoutObs int) (*core.Study, []byte) {
	t.Helper()
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatalf("coordinator study: %v", err)
	}
	t.Cleanup(st.Close)
	for i := 0; i < withObs; i++ {
		startFleetWorker(t, st.Coordinator().Addr(), fmt.Sprintf("obs%d", i), true)
	}
	for i := 0; i < withoutObs; i++ {
		startFleetWorker(t, st.Coordinator().Addr(), fmt.Sprintf("dark%d", i), false)
	}
	if _, err := st.Run(context.Background()); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	raw, err := json.MarshalIndent(st.Provenance, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return st, append(raw, '\n')
}

// serialManifest runs the same config unsharded and returns its
// manifest bytes — the reference every fleet variant must reproduce.
func serialManifest(t *testing.T) []byte {
	t.Helper()
	st, err := core.NewStudy(fleetBase())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(st.Provenance, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// TestFleetFederation runs a coordinator with three telemetry-bearing
// remote workers and checks the whole observability plane: federated
// metrics account for every worker visit, the fleet report shows
// healthy telemetry, the merged trace carries one trace ID across a
// coordinator row plus one row per worker — and the manifest is
// byte-identical to a serial run.
func TestFleetFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline five times; skipped in -short")
	}
	ref := serialManifest(t)

	cfg := fleetBase()
	cfg.Shards = 3
	cfg.CoordinatorAddr = "127.0.0.1:0"
	cfg.ShardMinWorkers = 3
	st, manifest := runFleet(t, cfg, 3, 0)
	if !bytes.Equal(ref, manifest) {
		t.Error("fleet manifest diverged from serial reference")
		logFirstDiff(t, ref, manifest)
	}

	coord := st.Coordinator()
	report := coord.FleetReport()
	if report.TraceID == "" {
		t.Fatal("fleet report has no trace ID")
	}
	if got := obs.MintTraceID(st.Fingerprint(), int64(cfg.Params.Seed)); report.TraceID != got {
		t.Errorf("trace ID %s, want the minted %s", report.TraceID, got)
	}
	if len(report.Workers) != 3 {
		t.Fatalf("fleet report shows %d workers, want 3", len(report.Workers))
	}
	totalVisits := 0
	for _, w := range report.Workers {
		if w.Telemetry != "ok" {
			t.Errorf("worker %s telemetry %q, want ok", w.Name, w.Telemetry)
		}
		if w.ShardsDone == 0 {
			t.Errorf("worker %s completed no shards", w.Name)
		}
		if w.Spans == 0 {
			t.Errorf("worker %s contributed no spans to the merged trace", w.Name)
		}
		totalVisits += w.Visits

		// Federation accounting: the per-visit counters merged from this
		// worker's metric deltas (instrumented page loads plus
		// interactive visits) must equal the visits the coordinator
		// counted from its entries.
		var federated, counted float64
		snap := st.Metrics.Snapshot()
		for _, p := range snap.Points {
			if !strings.Contains(p.Labels, `worker="`+w.Name+`"`) {
				continue
			}
			switch p.Name {
			case "browser_page_loads_total", "browser_interactive_visits_total":
				federated += float64(p.Count)
			case "fleet_worker_visits_total":
				counted = float64(p.Count)
			}
		}
		if counted != float64(w.Visits) {
			t.Errorf("worker %s: fleet_worker_visits_total %.0f, fleet report says %d", w.Name, counted, w.Visits)
		}
		if federated < 0.99*counted || counted == 0 {
			t.Errorf("worker %s: federated page loads %.0f of %.0f counted visits", w.Name, federated, counted)
		}
	}
	if totalVisits == 0 {
		t.Error("fleet completed zero visits")
	}

	// The merged trace: coordinator + one process row per worker, every
	// trace_id-bearing span under the run's single ID.
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceProcesses(&buf, coord.TraceProcesses(st.Tracer.Recent())); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	rows := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			rows[ev.Args["name"]] = true
		}
		if id, ok := ev.Args["trace_id"]; ok && id != report.TraceID {
			t.Errorf("span %q under trace %s, want %s", ev.Name, id, report.TraceID)
		}
	}
	for _, want := range []string{"coordinator", "obs0", "obs1", "obs2"} {
		if !rows[want] {
			t.Errorf("merged trace missing process row %q (have %v)", want, rows)
		}
	}

	// Flight events federated from workers carry their origin identity.
	if ev := st.Flight.Events(); len(ev) > 0 {
		tagged := 0
		for _, e := range ev {
			if e.Worker != "" && e.Shard > 0 {
				tagged++
			}
		}
		if tagged == 0 {
			t.Error("no federated flight events carry worker/shard identity")
		}
	}
}

// TestFleetTelemetryLossDegrades runs a mixed fleet — two workers with
// the telemetry plane wired, one without (the shape of a lost or
// pre-telemetry worker). The merge must stay clean and byte-identical;
// only the fleet view may degrade, marking the dark worker's telemetry
// as absent while the others stay "ok".
func TestFleetTelemetryLossDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline four times; skipped in -short")
	}
	ref := serialManifest(t)

	cfg := fleetBase()
	cfg.Shards = 3
	cfg.CoordinatorAddr = "127.0.0.1:0"
	cfg.ShardMinWorkers = 3
	st, manifest := runFleet(t, cfg, 2, 1)
	if !bytes.Equal(ref, manifest) {
		t.Error("manifest diverged when one worker lost telemetry")
		logFirstDiff(t, ref, manifest)
	}

	report := st.Coordinator().FleetReport()
	byName := map[string]shard.WorkerHealth{}
	for _, w := range report.Workers {
		byName[w.Name] = w
	}
	dark, ok := byName["dark0"]
	if !ok {
		t.Fatal("dark worker missing from fleet report")
	}
	if dark.Telemetry == "ok" || dark.Telemetry == "inline" {
		t.Errorf("telemetry-less worker reported %q, want a degraded status", dark.Telemetry)
	}
	if dark.ShardsDone == 0 {
		t.Error("dark worker merged no shards — telemetry loss must not cost data")
	}
	for _, name := range []string{"obs0", "obs1"} {
		if w := byName[name]; w.Telemetry != "ok" {
			t.Errorf("worker %s telemetry %q, want ok despite dark peer", name, w.Telemetry)
		}
	}
}

// TestFleetTelemetryOffByteIdentity pins the sidecar invariant at the
// cheapest point: an in-process sharded run with fleet telemetry on
// and one with it off produce DeepEqual Results and byte-identical
// manifests, because the knob is excluded from the config fingerprint
// by construction.
func TestFleetTelemetryOffByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice; skipped in -short")
	}
	run := func(off bool) (*core.Results, []byte) {
		cfg := fleetBase()
		cfg.Shards = 3
		cfg.ShardWorkers = 3
		cfg.FleetTelemetryOff = off
		st, err := core.NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		res, err := st.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(st.Provenance, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return res, append(raw, '\n')
	}
	resOn, manOn := run(false)
	resOff, manOff := run(true)
	if !reflect.DeepEqual(resOn, resOff) {
		t.Error("Results differ between fleet telemetry on and off")
	}
	if !bytes.Equal(manOn, manOff) {
		t.Error("manifest bytes differ between fleet telemetry on and off")
		logFirstDiff(t, manOn, manOff)
	}
}
