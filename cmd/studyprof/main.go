// Command studyprof is the study's continuous-profiling harness: it runs
// the seeded study under a CPU profile, parses the resulting pprof
// protobuf with internal/profparse (standard library only — no external
// pprof tooling), and prints a hot-path table attributing CPU to
// pipeline stages via the pprof labels the scheduler and serial runner
// propagate (stage, op, vantage), with the top-N hottest leaf functions
// per stage.
//
// Usage:
//
//	studyprof [-scale 0.004] [-seed 2019] [-workers 8] [-stage-workers 0]
//	          [-serial] [-top 3] [-json] [-heap] [-cpuprofile FILE]
//	          [-provenance DIR] [-min-attrib 0.9]
//
// The table's ordering is value-independent — stages sort by name
// (unlabeled last), functions by CPU then name — so two runs of the same
// config produce identically ordered tables even though sample counts
// are statistical. -json emits the same attribution as JSON for
// scripting. -min-attrib fails the run (exit 1) when less than the
// given fraction of CPU samples carries a stage label, which is the
// offline CI gate: label-propagation regressions surface as attribution
// loss. -heap additionally captures a post-run heap profile and prints
// its global top allocation sites (heap samples carry no goroutine
// labels, so no per-stage split is claimed). -cpuprofile saves the raw
// profile for external tooling. -provenance writes the study's
// manifest.json and runinfo.json plus a profile.json sidecar holding
// the attribution — the manifest stays byte-identical with profiling on
// or off, pinned by the core determinism tests.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/profparse"
	"pornweb/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "studyprof:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.004, "corpus scale (1.0 = paper size)")
	seed := flag.Uint64("seed", 2019, "generation seed")
	workers := flag.Int("workers", 8, "crawl parallelism")
	stageWorkers := flag.Int("stage-workers", 0, "concurrent pipeline stages (0 = NumCPU)")
	serial := flag.Bool("serial", false, "run pipeline stages strictly sequentially")
	timeout := flag.Duration("timeout", 30*time.Second, "per-page timeout")
	top := flag.Int("top", 3, "hottest leaf functions to print per stage")
	jsonOut := flag.Bool("json", false, "emit the attribution as JSON instead of a text table")
	heap := flag.Bool("heap", false, "also capture a post-run heap profile and print global top allocation sites")
	cpuprofile := flag.String("cpuprofile", "", "save the raw CPU profile to this file")
	provDir := flag.String("provenance", "", "write manifest.json, runinfo.json and profile.json into this directory")
	minAttrib := flag.Float64("min-attrib", 0, "exit 1 when less than this fraction of CPU is stage-attributed (0 disables)")
	flag.Parse()

	cfg := core.Config{
		Params:       webgen.Params{Seed: *seed, Scale: *scale},
		Workers:      *workers,
		StageWorkers: *stageWorkers,
		Serial:       *serial,
		Timeout:      *timeout,
	}
	st, err := core.NewStudy(cfg)
	if err != nil {
		return err
	}
	defer st.Close()

	var prof bytes.Buffer
	if err := pprof.StartCPUProfile(&prof); err != nil {
		return fmt.Errorf("start profile: %w", err)
	}
	start := time.Now()
	_, runErr := st.Run(context.Background())
	took := time.Since(start)
	pprof.StopCPUProfile()
	if runErr != nil {
		return runErr
	}

	if *cpuprofile != "" {
		if err := os.WriteFile(*cpuprofile, prof.Bytes(), 0o644); err != nil {
			return err
		}
	}
	p, err := profparse.Parse(prof.Bytes())
	if err != nil {
		return fmt.Errorf("parse profile: %w", err)
	}
	a := profparse.Attribute(p, *top)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			return err
		}
	} else {
		fmt.Printf("studyprof: scale %.3g seed %d (%s wall, %d samples)\n",
			*scale, *seed, took.Round(time.Millisecond), len(p.Sample))
		if err := profparse.WriteTable(os.Stdout, a); err != nil {
			return err
		}
	}

	if *heap {
		runtime.GC() // flush recently freed objects out of inuse_space
		var hbuf bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&hbuf, 0); err != nil {
			return fmt.Errorf("heap profile: %w", err)
		}
		hp, err := profparse.Parse(hbuf.Bytes())
		if err != nil {
			return fmt.Errorf("parse heap profile: %w", err)
		}
		fmt.Printf("\nheap (global inuse_space — heap samples carry no stage labels):\n")
		for _, row := range profparse.TopFunctions(hp, "inuse_space", *top) {
			fmt.Printf("  %s\t%d bytes\t%.1f%%\n", row.Name, row.Nanos, 100*row.Share)
		}
	}

	if *provDir != "" {
		if err := st.WriteProvenance(*provDir); err != nil {
			return fmt.Errorf("provenance: %w", err)
		}
		f, err := os.Create(filepath.Join(*provDir, "profile.json"))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *minAttrib > 0 && a.AttributedShare < *minAttrib {
		return fmt.Errorf("attribution %.1f%% below threshold %.1f%% — stage labels are not reaching the hot paths",
			100*a.AttributedShare, 100**minAttrib)
	}
	return nil
}
