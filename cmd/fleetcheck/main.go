// Command fleetcheck validates a sharded run's fleet observability
// plane from the outside, the way `make shardci` uses it: started
// alongside the coordinator, it polls the coordinator's admin listener
// (/fleet, /metrics, /trace) for as long as the run lasts, keeps the
// last successful scrape of each, and — once the listener goes away
// with the run's exit — asserts the federation actually happened:
//
//   - every registered worker appears in the /fleet report, has
//     completed at least one shard, and reports telemetry "ok";
//   - every worker appears as a worker="NAME" label in the federated
//     /metrics exposition;
//   - the federated per-visit series (browser_page_loads_total plus
//     browser_interactive_visits_total, merged from worker deltas)
//     account for at least -coverage (default 0.99) of the visits the
//     coordinator counted per worker in fleet_worker_visits_total;
//   - the merged /trace holds a coordinator process row plus one row
//     per telemetry-bearing worker, and every span that carries a
//     trace_id carries the run's single propagated trace ID.
//
// Exit 0 when all hold; exit 1 with a diagnosis otherwise. fleetcheck
// runs nothing itself — it is a pure observer, so passing it proves the
// observability plane without perturbing the run under test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

type workerRow struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Live       bool   `json:"live"`
	ShardsDone int    `json:"shards_done"`
	Visits     int    `json:"visits"`
	Telemetry  string `json:"telemetry"`
	Spans      int    `json:"spans"`
}

type fleetReport struct {
	TraceID string      `json:"trace_id"`
	Live    int         `json:"live"`
	Retired int         `json:"retired"`
	Workers []workerRow `json:"workers"`
}

type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	addr := flag.String("addr", "", "coordinator admin address (host:port) to scrape")
	minWorkers := flag.Int("min-workers", 3, "registered workers the final fleet report must show")
	coverage := flag.Float64("coverage", 0.99, "fraction of coordinator-counted visits the federated metrics must account for")
	interval := flag.Duration("interval", 200*time.Millisecond, "scrape interval")
	timeout := flag.Duration("timeout", 10*time.Minute, "give up if the run outlives this")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "fleetcheck: -addr required")
		os.Exit(1)
	}
	if err := run(*addr, *minWorkers, *coverage, *interval, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetcheck:", err)
		os.Exit(1)
	}
}

// scrape fetches one path, returning the body only on HTTP 200.
func scrape(client *http.Client, addr, path string) ([]byte, error) {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func run(addr string, minWorkers int, coverage float64, interval, timeout time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var fleet, metrics, trace []byte
	deadline := time.Now().Add(timeout)
	scrapes := 0
	for time.Now().Before(deadline) {
		f, err := scrape(client, addr, "/fleet")
		if err != nil {
			if scrapes > 0 {
				break // the run ended; validate the last good scrape
			}
			time.Sleep(interval) // listener not up yet
			continue
		}
		m, errM := scrape(client, addr, "/metrics")
		tr, errT := scrape(client, addr, "/trace")
		if errM != nil || errT != nil {
			// The listener died between paths: keep the previous
			// consistent triple rather than a torn one.
			if scrapes > 0 {
				break
			}
			time.Sleep(interval)
			continue
		}
		fleet, metrics, trace = f, m, tr
		scrapes++
		time.Sleep(interval)
	}
	if scrapes == 0 {
		return fmt.Errorf("no successful scrape of %s within %s", addr, timeout)
	}
	fmt.Printf("fleetcheck: %d scrapes of %s; validating final state\n", scrapes, addr)

	var report fleetReport
	if err := json.Unmarshal(fleet, &report); err != nil {
		return fmt.Errorf("parse /fleet: %w", err)
	}
	if report.TraceID == "" {
		return fmt.Errorf("/fleet reports no trace ID")
	}
	if len(report.Workers) < minWorkers {
		return fmt.Errorf("/fleet shows %d workers, want >= %d", len(report.Workers), minWorkers)
	}
	for _, w := range report.Workers {
		if w.ShardsDone == 0 {
			return fmt.Errorf("worker %s completed no shards", w.Name)
		}
		if w.Kind != "local" && w.Telemetry != "ok" {
			return fmt.Errorf("worker %s telemetry %q, want \"ok\"", w.Name, w.Telemetry)
		}
	}

	counted, federated, err := visitCounts(metrics)
	if err != nil {
		return err
	}
	for _, w := range report.Workers {
		if w.Kind == "local" {
			continue
		}
		if !workerLabelPresent(metrics, w.Name) {
			return fmt.Errorf("registered worker %s absent from the federated /metrics exposition", w.Name)
		}
		want := counted[w.Name]
		got := federated[w.Name]
		if want == 0 {
			return fmt.Errorf("worker %s has no fleet_worker_visits_total series", w.Name)
		}
		if got < coverage*want {
			return fmt.Errorf("worker %s: federation accounts for %.0f of %.0f visits (%.1f%%), want >= %.0f%%",
				w.Name, got, want, 100*got/want, 100*coverage)
		}
	}

	var doc traceDoc
	if err := json.Unmarshal(trace, &doc); err != nil {
		return fmt.Errorf("parse /trace: %w", err)
	}
	procs := map[int]string{}
	spanPIDs := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID] = ev.Args["name"]
		}
		if ev.Ph == "X" {
			spanPIDs[ev.PID]++
			if id, ok := ev.Args["trace_id"]; ok && id != report.TraceID {
				return fmt.Errorf("span %q carries trace ID %s, run is %s", ev.Name, id, report.TraceID)
			}
		}
	}
	names := map[string]bool{}
	for _, name := range procs {
		names[name] = true
	}
	if !names["coordinator"] {
		return fmt.Errorf("/trace has no coordinator process row (rows: %v)", procs)
	}
	workerRows := 0
	for _, w := range report.Workers {
		if names[w.Name] {
			workerRows++
		}
	}
	if workerRows < minWorkers {
		return fmt.Errorf("/trace shows %d worker process rows, want >= %d (rows: %v)", workerRows, minWorkers, procs)
	}
	fmt.Printf("fleetcheck: OK — %d workers federated under trace %s, %d trace process rows\n",
		len(report.Workers), report.TraceID, len(procs))
	return nil
}

// seriesLine matches one exposition sample: name{labels} value.
var seriesLine = regexp.MustCompile(`^([a-z0-9_]+)(\{[^}]*\})? ([0-9eE.+-]+)$`)

// workerRE extracts the worker label from a label block.
var workerRE = regexp.MustCompile(`[{,]worker="([^"]*)"`)

// visitCounts sums, per worker, the visits the coordinator counted
// (fleet_worker_visits_total) and the visits federated from worker
// metric deltas: browser_page_loads_total for instrumented crawls plus
// browser_interactive_visits_total for the interactive (policy) phase,
// which counts its visits under its own series.
func visitCounts(metrics []byte) (counted, federated map[string]float64, err error) {
	counted = map[string]float64{}
	federated = map[string]float64{}
	for _, line := range strings.Split(string(metrics), "\n") {
		m := seriesLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, labels := m[1], m[2]
		w := workerRE.FindStringSubmatch(labels)
		if w == nil {
			continue
		}
		v, perr := strconv.ParseFloat(m[3], 64)
		if perr != nil {
			return nil, nil, fmt.Errorf("parse sample %q: %w", line, perr)
		}
		switch name {
		case "fleet_worker_visits_total":
			counted[w[1]] += v
		case "browser_page_loads_total", "browser_interactive_visits_total":
			federated[w[1]] += v
		}
	}
	if len(counted) == 0 {
		return nil, nil, fmt.Errorf("no fleet_worker_visits_total series in /metrics")
	}
	return counted, federated, nil
}

// workerLabelPresent reports whether any exposition series carries
// worker="name".
func workerLabelPresent(metrics []byte, name string) bool {
	needle := `worker="` + name + `"`
	return strings.Contains(string(metrics), needle)
}
