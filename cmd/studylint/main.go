// Command studylint runs the repo's first-party analyzer suite
// (internal/lint) over every package in the module and exits nonzero
// on any unsuppressed finding. It is built on go/parser + go/ast +
// go/types with the source importer only — no x/tools, no module
// downloads — so `make lint` is an always-on CI gate even fully
// offline, unlike the network-gated staticcheck target.
//
// Usage:
//
//	studylint [-root dir] [-json] [-list] [-suppressions]
//
// Findings print deterministically sorted by file:line:col, one per
// line (or as a JSON array with -json). Suppress a finding with a
// written reason on the offending line or the line above:
//
//	//studylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// -suppressions audits the suppressions themselves: every directive is
// listed with its location, analyzers, reason and whether it still
// suppresses anything; a stale directive (suppressing nothing) is a
// finding, so dead ignores cannot accumulate.
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pornweb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status lifted out, so the
// command is testable end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("studylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod upward from cwd)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list analyzers and the invariants they guard, then exit")
	audit := fs.Bool("suppressions", false, "audit //studylint:ignore directives; stale ones are findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			return fatal(stderr, err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		return fatal(stderr, err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return fatal(stderr, err)
	}
	findings, recs := lint.RunAudit(lint.DefaultConfig(), pkgs)
	if *audit {
		writeSuppressionTable(stdout, recs)
		findings = append(findings, lint.StaleFindings(recs)...)
		lint.SortFindings(findings)
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			return fatal(stderr, err)
		}
	} else {
		if err := lint.WriteText(stdout, findings); err != nil {
			return fatal(stderr, err)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "studylint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// writeSuppressionTable lists every valid suppression directive with
// its usage verdict, deterministically ordered by file:line.
func writeSuppressionTable(w io.Writer, recs []lint.SuppressionRecord) {
	fmt.Fprintf(w, "# %d suppression(s)\n", len(recs))
	for _, r := range recs {
		verdict := "used"
		if !r.Used {
			verdict = "STALE"
		}
		fmt.Fprintf(w, "# %s:%d: %s [%s] %s\n",
			r.File, r.Line, strings.Join(r.Analyzers, ","), verdict, r.Reason)
	}
}

// findModuleRoot walks upward from the working directory to the
// nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("studylint: no go.mod found upward from the working directory")
		}
		dir = parent
	}
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "studylint:", err)
	return 2
}
