// Command studylint runs the repo's first-party analyzer suite
// (internal/lint) over every package in the module and exits nonzero
// on any unsuppressed finding. It is built on go/parser + go/ast +
// go/types with the source importer only — no x/tools, no module
// downloads — so `make lint` is an always-on CI gate even fully
// offline, unlike the network-gated staticcheck target.
//
// Usage:
//
//	studylint [-root dir] [-json] [-list]
//
// Findings print deterministically sorted by file:line:col, one per
// line (or as a JSON array with -json). Suppress a finding with a
// written reason on the offending line or the line above:
//
//	//studylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pornweb/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod upward from cwd)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list analyzers and the invariants they guard, then exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	findings := lint.Run(lint.DefaultConfig(), pkgs)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		if err := lint.WriteText(os.Stdout, findings); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "studylint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the
// nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("studylint: no go.mod found upward from the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "studylint:", err)
	os.Exit(2)
}
