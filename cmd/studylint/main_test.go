package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeMiniModule lays down a one-package module whose only blemish is
// a suppression directive that no longer suppresses anything.
func writeMiniModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module stalefixture\n\ngo 1.21\n",
		"stale.go": `package stalefixture

// Add is order-independent arithmetic; nothing here trips any
// analyzer, which is exactly what makes the directive stale.
func Add(a, b int) int {
	//studylint:ignore detrange keys were sorted upstream once; the range is long gone
	return a + b
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStaleSuppressionFailsAudit(t *testing.T) {
	dir := writeMiniModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions"}, &out, &errb); code != 1 {
		t.Fatalf("studylint -suppressions on a stale directive: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "STALE") {
		t.Errorf("audit table does not mark the directive STALE:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stale //studylint:ignore") {
		t.Errorf("missing stale-suppression finding:\n%s", out.String())
	}
}

func TestStaleSuppressionPassesWithoutAudit(t *testing.T) {
	dir := writeMiniModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir}, &out, &errb); code != 0 {
		t.Fatalf("studylint without -suppressions: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}

func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("studylint -list: exit %d, want 0", code)
	}
	for _, name := range []string{"detrange", "detflow", "locksafe", "goroleak", "wirecompat"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
