// Command benchjson converts `go test -bench` output on stdin into a
// small JSON document on stdout. `make bench-json` pipes the two
// pipeline benchmarks through it to produce BENCH_pipeline.json:
// mean ns/op per benchmark plus the serial/scheduled speedup ratio
// (>1 means the DAG-scheduled pipeline is faster). It also feeds the
// observability benchmarks into BENCH_obs.json: per-visit flight-sink
// overhead (unsampled, sampled, disabled) and manifest assembly cost,
// with the unsampled/sampled ratio showing what head sampling buys.
// `make bench-prof` feeds the scheduled-vs-profiled pipeline pair into
// BENCH_prof.json, whose overhead ratio prices the continuous-profiling
// harness (profiled ns/op over uninstrumented ns/op; ~1.0 means the
// 100 Hz sampler is effectively free). `make lintbudget` feeds the
// studylint benchmarks in and asserts the full-module pass against its
// wall-clock budget with the repeatable `-assert-max name=value` flag:
// any derived metric exceeding its bound fails the invocation (exit 1)
// after the JSON is written, turning a benchmark into a CI gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkStudyRunSerial-8    3    5833738839 ns/op    389592888 B/op    3670945 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

type bench struct {
	NsPerOp float64 `json:"ns_per_op"`
	// MinNsPerOp is the fastest run: on a shared container wall-clock
	// noise is additive, so the minimum tracks the true cost better
	// than the mean once runs > 1.
	MinNsPerOp float64 `json:"min_ns_per_op,omitempty"`
	Runs       int     `json:"runs"`
}

type output struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]bench `json:"benchmarks"`
	// SpeedupSerialOverScheduled is serial ns/op divided by scheduled
	// ns/op; present only when both pipeline benchmarks are in the input.
	SpeedupSerialOverScheduled float64 `json:"speedup_serial_over_scheduled,omitempty"`
	// FlightUnsampledOverSampled is unsampled visit-event cost divided by
	// the cost with head sampling on (>1 means sampling pays for itself);
	// present only when both flight benchmarks are in the input.
	FlightUnsampledOverSampled float64 `json:"flight_unsampled_over_sampled,omitempty"`
	// ProfileOverheadProfiledOverScheduled is the profiled pipeline's
	// ns/op divided by the uninstrumented scheduled pipeline's — the
	// price of running the study under the CPU sampler; present only
	// when both benchmarks are in the input.
	ProfileOverheadProfiledOverScheduled float64 `json:"profile_overhead_profiled_over_scheduled,omitempty"`
	// StoreOverheadStoreBackedOverScheduled is the store-backed
	// pipeline's ns/op divided by the in-memory scheduled pipeline's —
	// the price of crash-resumability (serialize + CRC-frame + append +
	// batched fsync per visit); present only when both benchmarks are
	// in the input.
	StoreOverheadStoreBackedOverScheduled float64 `json:"store_overhead_storebacked_over_scheduled,omitempty"`
	// FleetTelemetryOnOverOff is the sharded pipeline's min ns/op with
	// the fleet observability return path on divided by the same run
	// with it off — the price of shipping metric deltas, sampled spans
	// and flight events inside every shard result. Min-of-runs, not
	// mean: at one iteration per run the container's scheduling noise
	// (±8% here) would otherwise swamp a percent-level overhead.
	// Present only when both fleet benchmarks are in the input.
	FleetTelemetryOnOverOff float64 `json:"fleet_telemetry_on_over_off,omitempty"`
	// LintFullModuleSeconds is BenchmarkLintModule's mean wall-clock in
	// seconds — the cost of the always-on `make lint` gate; present only
	// when that benchmark is in the input. `make lintbudget` asserts it
	// with -assert-max against 2x the PR 5 baseline.
	LintFullModuleSeconds float64 `json:"lint_full_module_seconds,omitempty"`
	// LintAnalyzerSeconds maps analyzer name to its solo mean seconds
	// over the pre-loaded module (BenchmarkLintAnalyzer sub-benchmarks),
	// splitting the full-pass budget by analyzer; present only when
	// those benchmarks are in the input.
	LintAnalyzerSeconds map[string]float64 `json:"lint_analyzer_seconds,omitempty"`
	// ShardedOverSerial maps fleet size ("workers_1", "workers_2", ...)
	// to the sharded pipeline's ns/op divided by the serial pipeline's
	// at that many workers — the cost (or, below 1, the win) of
	// partition + dispatch + merge; present only when the serial and at
	// least one StudyRunShardedN benchmark are in the input.
	ShardedOverSerial map[string]float64 `json:"sharded_over_serial,omitempty"`
}

// assertMax collects repeated -assert-max name=value flags.
type assertMax map[string]float64

func (a assertMax) String() string {
	parts := make([]string, 0, len(a))
	for k, v := range a {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (a assertMax) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	max, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad bound in %q: %v", s, err)
	}
	a[name] = max
	return nil
}

func main() {
	asserts := assertMax{}
	flag.Var(asserts, "assert-max",
		"fail (exit 1) when the named derived metric exceeds value; repeatable, e.g. -assert-max lint_full_module_seconds=9.84")
	flag.Parse()

	out := output{Benchmarks: map[string]bench{}}
	sums := map[string]float64{}
	mins := map[string]float64{}
	counts := map[string]int{}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		sums[m[1]] += ns
		if cur, ok := mins[m[1]]; !ok || ns < cur {
			mins[m[1]] = ns
		}
		counts[m[1]]++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for name, sum := range sums {
		out.Benchmarks[name] = bench{
			NsPerOp:    sum / float64(counts[name]),
			MinNsPerOp: mins[name],
			Runs:       counts[name],
		}
	}
	serial, okS := out.Benchmarks["StudyRunSerial"]
	sched, okC := out.Benchmarks["StudyRunScheduled"]
	if okS && okC && sched.NsPerOp > 0 {
		out.SpeedupSerialOverScheduled = serial.NsPerOp / sched.NsPerOp
	}
	full, okF := out.Benchmarks["FlightVisitUnsampled"]
	sampled, okP := out.Benchmarks["FlightVisitSampled"]
	if okF && okP && sampled.NsPerOp > 0 {
		out.FlightUnsampledOverSampled = full.NsPerOp / sampled.NsPerOp
	}
	prof, okPr := out.Benchmarks["StudyRunProfiled"]
	if okPr && okC && sched.NsPerOp > 0 {
		out.ProfileOverheadProfiledOverScheduled = prof.NsPerOp / sched.NsPerOp
	}
	backed, okB := out.Benchmarks["StudyRunStoreBacked"]
	if okB && okC && sched.NsPerOp > 0 {
		out.StoreOverheadStoreBackedOverScheduled = backed.NsPerOp / sched.NsPerOp
	}
	telOn, okOn := out.Benchmarks["StudyRunFleetTelemetryOn"]
	telOff, okOff := out.Benchmarks["StudyRunFleetTelemetryOff"]
	if okOn && okOff && telOff.MinNsPerOp > 0 {
		out.FleetTelemetryOnOverOff = telOn.MinNsPerOp / telOff.MinNsPerOp
	}
	if lintFull, ok := out.Benchmarks["LintModule"]; ok {
		out.LintFullModuleSeconds = lintFull.NsPerOp / 1e9
	}
	for name, b := range out.Benchmarks {
		analyzer, ok := strings.CutPrefix(name, "LintAnalyzer/")
		if !ok {
			continue
		}
		if out.LintAnalyzerSeconds == nil {
			out.LintAnalyzerSeconds = map[string]float64{}
		}
		out.LintAnalyzerSeconds[analyzer] = b.NsPerOp / 1e9
	}
	if okS && serial.NsPerOp > 0 {
		for name, b := range out.Benchmarks {
			w, ok := strings.CutPrefix(name, "StudyRunSharded")
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			if out.ShardedOverSerial == nil {
				out.ShardedOverSerial = map[string]float64{}
			}
			out.ShardedOverSerial["workers_"+w] = b.NsPerOp / serial.NsPerOp
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if len(asserts) > 0 {
		metrics := map[string]float64{
			"speedup_serial_over_scheduled":             out.SpeedupSerialOverScheduled,
			"flight_unsampled_over_sampled":             out.FlightUnsampledOverSampled,
			"profile_overhead_profiled_over_scheduled":  out.ProfileOverheadProfiledOverScheduled,
			"store_overhead_storebacked_over_scheduled": out.StoreOverheadStoreBackedOverScheduled,
			"fleet_telemetry_on_over_off":               out.FleetTelemetryOnOverOff,
			"lint_full_module_seconds":                  out.LintFullModuleSeconds,
		}
		for k, v := range out.LintAnalyzerSeconds {
			metrics["lint_analyzer_seconds/"+k] = v
		}
		for k, v := range out.ShardedOverSerial {
			metrics["sharded_over_serial/"+k] = v
		}
		names := make([]string, 0, len(asserts))
		for name := range asserts {
			names = append(names, name)
		}
		sort.Strings(names)
		failed := false
		for _, name := range names {
			got, ok := metrics[name]
			if !ok || got == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: -assert-max %s: metric absent from input\n", name)
				failed = true
				continue
			}
			if max := asserts[name]; got > max {
				fmt.Fprintf(os.Stderr, "benchjson: %s = %.3f exceeds budget %.3f\n", name, got, max)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: %s = %.3f within budget %.3f\n", name, got, asserts[name])
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
