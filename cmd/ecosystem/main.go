// Command ecosystem generates a synthetic web ecosystem, prints its ground
// truth, and optionally serves it on loopback for manual exploration with
// curl or a browser configured to resolve through it.
//
// Usage:
//
//	ecosystem [-scale 0.02] [-seed 2019] [-serve] [-hosts] [-faults]
//	          [-metrics-addr 127.0.0.1:9090]
//
// -faults generates the ecosystem with the default chaos profile: a
// deterministic subset of hosts answers with transient 5xx bursts,
// dropped connections, truncated bodies, mid-stream resets, redirect
// loops, or injected latency — visible from curl and counted in
// webserver_faults_injected_total on /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"pornweb/internal/obs"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

func main() {
	scale := flag.Float64("scale", 0.02, "corpus scale (1.0 = paper size)")
	seed := flag.Uint64("seed", 2019, "generation seed")
	serve := flag.Bool("serve", false, "start the loopback server and wait")
	hosts := flag.Bool("hosts", false, "list every served hostname")
	metricsAddr := flag.String("metrics-addr", "", "with -serve, expose /metrics and /debug/pprof/ on this address")
	faults := flag.Bool("faults", false, "inject the default chaos profile into the generated ecosystem")
	flag.Parse()

	params := webgen.Params{Seed: *seed, Scale: *scale}
	if *faults {
		params.Faults = webgen.DefaultFaultProfile()
		params.Faults.Geo451 = true
	}
	eco := webgen.Generate(params)
	fmt.Print(eco.GroundTruthSummary())
	if *faults {
		byKind := map[webgen.FaultKind]int{}
		for _, h := range eco.AllHosts() {
			if k := eco.FaultKindFor(h); k != webgen.FaultNone {
				byKind[k]++
			}
		}
		fmt.Println("\ninjected faults (ground truth):")
		for k := webgen.FaultServerError; k <= webgen.FaultLatency; k++ {
			if byKind[k] > 0 {
				fmt.Printf("  %-14s %4d hosts\n", k, byKind[k])
			}
		}
	}

	fmt.Println("\nowner clusters (ground truth):")
	byOwner := map[string]int{}
	for _, s := range eco.PornSites {
		if s.Owner != nil {
			byOwner[s.Owner.Name]++
		}
	}
	type oc struct {
		name string
		n    int
	}
	var clusters []oc
	for name, n := range byOwner {
		clusters = append(clusters, oc{name, n})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].n != clusters[j].n {
			return clusters[i].n > clusters[j].n
		}
		return clusters[i].name < clusters[j].name
	})
	for _, c := range clusters {
		fmt.Printf("  %-32s %4d sites\n", c.name, c.n)
	}

	if *hosts {
		fmt.Println("\nhosts:")
		for _, h := range eco.AllHosts() {
			fmt.Println(" ", h)
		}
	}

	if *serve {
		var opts []webserver.Option
		var reg *obs.Registry
		if *metricsAddr != "" {
			reg = obs.NewRegistry()
			opts = append(opts,
				webserver.WithMetrics(reg),
				webserver.WithLogger(obs.NewLogger(os.Stderr, obs.LevelWarn).CountIn(reg)))
		}
		srv, err := webserver.Start(eco, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecosystem:", err)
			os.Exit(1)
		}
		defer srv.Close()
		if reg != nil {
			admin, err := obs.ServeAdmin(*metricsAddr, reg, nil, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecosystem:", err)
				os.Exit(1)
			}
			defer admin.Close()
			fmt.Printf("\nobservability: http://%s/metrics\n", admin.Addr())
		}
		fmt.Printf("\nserving: http=%s https=%s\n", srv.HTTPAddr(), srv.HTTPSAddr())
		fmt.Printf("example: curl -H 'Host: pornhub.com' http://%s/\n", srv.HTTPAddr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
