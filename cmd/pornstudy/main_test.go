package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// studyArgs is the cheapest full-study invocation the tests run.
func studyArgs(dir string, extra ...string) []string {
	args := []string{"-scale", "0.004", "-seed", "11", "-workers", "4",
		"-timeout", "5s", "-store", dir}
	return append(args, extra...)
}

// TestRunStoreBacked: a store-backed run exits 0 and leaves a durable
// store (segments plus checkpoint) behind, and a resume of the
// completed run also exits 0 (every visit replays, none are refetched).
func TestRunStoreBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full studies")
	}
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(studyArgs(dir), &out, &errOut); code != 0 {
		t.Fatalf("store-backed run: exit %d\nstderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("no checkpoint after clean run: %v", err)
	}
	out.Reset()
	errOut.Reset()
	if code := run(studyArgs(dir, "-resume"), &out, &errOut); code != 0 {
		t.Fatalf("resume of completed run: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Tales from the Porn") {
		t.Fatal("resumed run produced no report")
	}
}

// TestResumeMismatchExits2: -resume against a store written under a
// different seed must exit with status 2, the typed refusal.
func TestResumeMismatchExits2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full study")
	}
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(studyArgs(dir), &out, &errOut); code != 0 {
		t.Fatalf("store-backed run: exit %d\nstderr: %s", code, errOut.String())
	}
	errOut.Reset()
	args := []string{"-scale", "0.004", "-seed", "12", "-workers", "4",
		"-timeout", "5s", "-store", dir, "-resume"}
	if code := run(args, &out, &errOut); code != 2 {
		t.Fatalf("mismatched resume: exit %d, want 2\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "fingerprint mismatch") {
		t.Fatalf("mismatched resume stderr lacks the typed cause: %s", errOut.String())
	}
}

// TestKillRequiresStore: crash injection without a store is a usage
// error, not a silent no-op.
func TestKillRequiresStore(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-kill-after-appends", "3"}, &out, &errOut); code != 1 {
		t.Fatalf("kill without store: exit %d, want 1", code)
	}
}
