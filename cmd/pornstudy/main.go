// Command pornstudy runs the complete measurement study against a freshly
// generated synthetic web ecosystem and prints every table and figure of
// the paper's evaluation.
//
// Usage:
//
//	pornstudy [-scale 0.05] [-seed 2019] [-workers 16] [-timeout 30s] [-v]
//	          [-serial] [-stage-workers 4]
//	          [-metrics-addr 127.0.0.1:9090]
//	          [-faults] [-retries 3] [-breaker-threshold 5] [-page-budget 2m]
//	          [-provenance DIR] [-trace-out FILE]
//	          [-flight-out FILE] [-flight-sample N]
//	          [-store DIR] [-resume] [-store-sync N]
//	          [-kill-after-appends N] [-kill-torn]
//	          [-shards N] [-shard-workers N] [-coordinator-addr ADDR]
//	          [-shard-min-workers N] [-fleet-telemetry=false]
//	pornstudy -worker -coordinator ADDR [-worker-listen 127.0.0.1:0]
//	          [-metrics-addr 127.0.0.1:0] [-shard-kill-visits N] ...
//
// By default the pipeline runs as a dependency graph: independent crawls
// and analyses overlap, bounded by -stage-workers (0 = NumCPU). -serial
// restores the historical strictly sequential stage order; both produce
// identical results (pinned by the schedule-equivalence tests).
//
// -faults injects the default chaos profile into the generated
// ecosystem (transient 5xx bursts, drops, truncation, resets, redirect
// loops, latency, HTTP 451 geo-blocks). -retries enables bounded
// retries with exponential backoff; -breaker-threshold arms the
// per-host circuit breaker. The report then includes the robustness
// section with per-vantage loss and the failure taxonomy.
//
// -store DIR opens the durable visit store: every completed visit is
// appended to an fsync'd log in DIR, so a crashed or interrupted run
// can be resumed with -resume against the same directory — already
// durable visits are replayed instead of refetched, and the run
// manifest comes out byte-identical to an uninterrupted run (the
// crashsafety make target proves this). Resuming against a store
// written under a different config or seed exits with status 2.
// -store-sync N batches N appends per fsync (default 16).
// -kill-after-appends N is the crash-injection harness: the process
// dies (exit 137) at the Nth store append, -kill-torn additionally
// leaves a torn half-written record for replay to truncate.
//
// -shards N (N > 1) shards every named crawl stage by registrable
// domain and dispatches the shards across a worker fleet; the merged
// run is byte-identical to a serial run of the same config (the
// shardci make target and TestShardEquivalence prove this). Without
// -coordinator-addr the fleet is in-process (-shard-workers many, one
// per shard by default). With -coordinator-addr the coordinator opens
// a registration listener and waits for -shard-min-workers worker
// processes: start those with `pornstudy -worker -coordinator ADDR`
// plus the *same* scale/seed/crawl flags — a worker refuses
// assignments from a foreign config fingerprint (exit paths mirror the
// store's fingerprint binding). -shard-kill-visits N makes a worker
// die (exit 137) at its Nth visit — the reassignment harness; the
// coordinator reruns the lost shard on a survivor and the merged
// output is unchanged. The per-shard digests of a sharded run land in
// a shards.json sidecar next to manifest.json.
//
// A SIGINT (Ctrl-C) no longer aborts mid-write: the study context is
// canceled, in-flight stages drain, the flight recorder and provenance
// files flush, and the store checkpoints before the process exits 130.
//
// With -metrics-addr set, an admin listener exposes live run telemetry:
// /metrics (Prometheus text format), /spans (recent pipeline-stage spans
// as JSON), /flight (recent per-visit wide events as NDJSON), /trace
// (Chrome trace-event export) and /debug/pprof/ while the study runs.
//
// On a sharded run those views federate the whole fleet: every shard
// result carries the worker's metric deltas, sampled spans and flight
// events back to the coordinator, whose /metrics merges them under
// worker/shard labels, /fleet reports per-worker health and stage
// progress as JSON, and /trace exports one merged multi-process trace
// under the run's trace ID. Workers run their own admin listener too
// (auto-port by default; pin it with -metrics-addr) and report its
// bound address at registration. -fleet-telemetry=false turns the
// return path off; crawl results and the manifest are byte-identical
// either way — telemetry is a sidecar, never an input.
//
// -provenance DIR writes the run's manifest.json (deterministic: two runs
// of the same seeded config are byte-identical) and runinfo.json
// (wall-clock sidecar) into DIR; compare two such directories with the
// studydiff command. -trace-out dumps the stage spans as a Chrome
// trace-event file loadable in Perfetto; -flight-out streams every kept
// per-visit flight event as NDJSON; -flight-sample N keeps only 1 in N
// successful visits (failures are always kept).
//
// -scale 1.0 reproduces the paper's corpus sizes (6,843 porn sites and
// 9,688 regular sites) and takes several minutes; the default runs a
// proportionally scaled-down study in seconds.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/obs"
	"pornweb/internal/report"
	"pornweb/internal/resilience"
	"pornweb/internal/shard"
	"pornweb/internal/store"
	"pornweb/internal/webgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, so the exit
// contract (0 ok, 1 error, 2 store fingerprint mismatch, 130 SIGINT)
// is testable without forking.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pornstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.05, "corpus scale (1.0 = paper size)")
	seed := fs.Uint64("seed", 2019, "generation seed")
	workers := fs.Int("workers", 16, "crawl parallelism")
	serial := fs.Bool("serial", false, "run pipeline stages strictly sequentially (reference schedule)")
	stageWorkers := fs.Int("stage-workers", 0, "concurrent pipeline stages for the DAG scheduler (0 = NumCPU)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-page timeout")
	verbose := fs.Bool("v", false, "progress logging")
	jsonOut := fs.String("json", "", "also write the raw results as JSON to this file")
	csvDir := fs.String("csv", "", "also write per-experiment CSV files into this directory")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /spans and /debug/pprof/ on this address (e.g. 127.0.0.1:9090)")
	faults := fs.Bool("faults", false, "inject the default chaos profile into the generated ecosystem")
	retries := fs.Int("retries", 0, "max attempts per request (0 or 1 = single-shot)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a host's circuit breaker (0 = disabled)")
	breakerCooldown := fs.Duration("breaker-cooldown", 500*time.Millisecond, "how long an open breaker rejects before half-opening")
	pageBudget := fs.Duration("page-budget", 0, "total deadline per page visit across all retries (0 = 4x timeout when retries are on)")
	provDir := fs.String("provenance", "", "write manifest.json and runinfo.json into this directory (compare runs with studydiff)")
	traceOut := fs.String("trace-out", "", "write stage spans as a Chrome trace-event file (load in Perfetto or chrome://tracing)")
	flightOut := fs.String("flight-out", "", "stream kept per-visit flight events to this file as NDJSON")
	flightSample := fs.Int("flight-sample", 0, "keep 1 in N successful visit events (failures always kept; <=1 keeps all)")
	storeDir := fs.String("store", "", "persist every completed visit into a durable store in this directory")
	resume := fs.Bool("resume", false, "resume from an existing -store directory, skipping visits already durable")
	storeSync := fs.Int("store-sync", 0, "store appends per fsync batch (0 = default 16; 1 syncs every visit)")
	killAfter := fs.Int("kill-after-appends", 0, "crash injection: die (exit 137) at the Nth store append (0 = off)")
	killTorn := fs.Bool("kill-torn", false, "crash injection: additionally leave a torn half-written record")
	shards := fs.Int("shards", 0, "partition each crawl stage into N shards dispatched across a worker fleet (0/1 = serial)")
	shardWorkers := fs.Int("shard-workers", 0, "in-process shard workers (0 = one per shard; ignored with -coordinator-addr)")
	coordAddr := fs.String("coordinator-addr", "", "with -shards: listen here for worker-process registrations instead of using in-process workers")
	shardMinWorkers := fs.Int("shard-min-workers", 0, "with -coordinator-addr: workers to wait for before dispatching (0 = 1)")
	worker := fs.Bool("worker", false, "run as a shard worker process: serve assignments instead of running the study")
	workerListen := fs.String("worker-listen", "127.0.0.1:0", "worker mode: address to serve assignments on")
	coordinator := fs.String("coordinator", "", "worker mode: coordinator registration address to join")
	shardKillVisits := fs.Int("shard-kill-visits", 0, "worker mode: crash injection — die (exit 137) at the Nth visit (0 = off)")
	fleetTelemetry := fs.Bool("fleet-telemetry", true, "with -shards: workers return metric deltas, spans and flight events for the coordinator's federated /metrics, /fleet and /trace views")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	params := webgen.Params{Seed: *seed, Scale: *scale}
	if *faults {
		params.Faults = webgen.DefaultFaultProfile()
		params.Faults.Geo451 = true
	}
	cfg := core.Config{
		Params:       params,
		Workers:      *workers,
		Serial:       *serial,
		StageWorkers: *stageWorkers,
		Timeout:      *timeout,
		MetricsAddr:  *metricsAddr,
		Resilience: resilience.Policy{
			MaxAttempts:      *retries,
			Seed:             int64(*seed),
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		},
		PageBudget:      *pageBudget,
		FlightSample:    *flightSample,
		StoreDir:        *storeDir,
		StoreResume:     *resume,
		StoreSyncEvery:  *storeSync,
		Shards:          *shards,
		ShardWorkers:    *shardWorkers,
		CoordinatorAddr: *coordAddr,
		ShardMinWorkers: *shardMinWorkers,

		FleetTelemetryOff: !*fleetTelemetry,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, "# "+format+"\n", args...)
		}
	}
	if *worker {
		return runWorker(cfg, *coordinator, *workerListen, *shardKillVisits, stderr)
	}
	if *killAfter > 0 {
		if *storeDir == "" {
			fmt.Fprintln(stderr, "pornstudy: -kill-after-appends requires -store")
			return 1
		}
		cfg.StoreKill = &store.KillSwitch{After: *killAfter, Torn: *killTorn, Exit: os.Exit}
	}
	var flightFile *os.File
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintln(stderr, "pornstudy:", err)
			return 1
		}
		flightFile = f
		cfg.FlightSink = f
	}
	st, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "pornstudy:", err)
		if errors.Is(err, store.ErrFingerprintMismatch) {
			return 2
		}
		return 1
	}
	defer st.Close()
	if *metricsAddr != "" {
		fmt.Fprintf(stderr, "observability: http://%s/metrics\n", st.AdminAddr())
	}
	if *coordAddr != "" && st.Coordinator() != nil {
		fmt.Fprintf(stderr, "shard coordinator: workers register at %s\n", st.Coordinator().Addr())
	}

	// Graceful SIGINT: cancel the study context so in-flight stages
	// drain; the deferred st.Close then checkpoints the store and stops
	// the servers, so an interrupted store-backed run resumes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := st.Run(ctx)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "pornstudy: interrupted; draining and checkpointing")
			flushVolatile(st, stderr, flightFile, *flightOut, *traceOut, *provDir)
			return 130
		}
		fmt.Fprintln(stderr, "pornstudy:", err)
		return 1
	}
	fmt.Fprintf(stdout, "Tales from the Porn — reproduction run (scale %.3g, seed %d, %s)\n",
		*scale, *seed, time.Since(start).Round(time.Millisecond))
	report.All(stdout, res)
	report.Provenance(stdout, st.Provenance)

	if *provDir != "" {
		if err := st.WriteProvenance(*provDir); err != nil {
			fmt.Fprintln(stderr, "pornstudy: provenance:", err)
			return 1
		}
		fmt.Fprintf(stderr, "provenance written to %s\n", *provDir)
	}
	if *traceOut != "" {
		if err := writeTrace(st, *traceOut); err != nil {
			fmt.Fprintln(stderr, "pornstudy: trace:", err)
			return 1
		}
		fmt.Fprintf(stderr, "trace written to %s\n", *traceOut)
	}
	if flightFile != nil {
		seen, kept, sampledOut := st.Flight.Stats()
		flightFile.Close()
		flightFile = nil
		fmt.Fprintf(stderr, "flight events written to %s (%d seen, %d kept, %d sampled out)\n",
			*flightOut, seen, kept, sampledOut)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(stderr, "pornstudy:", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "pornstudy: encode:", err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stderr, "raw results written to %s\n", *jsonOut)
	}
	if *csvDir != "" {
		if err := report.WriteCSVDir(*csvDir, res); err != nil {
			fmt.Fprintln(stderr, "pornstudy: csv:", err)
			return 1
		}
		fmt.Fprintf(stderr, "CSV tables written to %s\n", *csvDir)
	}
	return 0
}

// runWorker turns the process into one member of a sharded crawl's
// worker fleet: build the same deterministic study the coordinator
// runs (the config fingerprint binds the two — a worker started with
// different crawl flags answers assignments with 409), serve shard
// assignments on listen, register with the coordinator, and run until
// a /shutdown request (exit 0) or SIGINT (exit 130). The worker never
// opens a store and never shards; the coordinator owns both.
func runWorker(cfg core.Config, coordinator, listen string, killVisits int, stderr io.Writer) int {
	if coordinator == "" {
		fmt.Fprintln(stderr, "pornstudy: -worker requires -coordinator")
		return 1
	}
	cfg.StoreDir = ""
	cfg.StoreResume = false
	cfg.StoreKill = nil
	cfg.Shards = 0
	cfg.ShardWorkers = 0
	cfg.CoordinatorAddr = ""
	// Every worker gets its own admin listener (auto-port unless
	// -metrics-addr pins one); the bound address is reported to the
	// coordinator at registration so the fleet view can link to it.
	if cfg.MetricsAddr == "" {
		cfg.MetricsAddr = "127.0.0.1:0"
	}
	st, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "pornstudy:", err)
		return 1
	}
	defer st.Close()
	fmt.Fprintf(stderr, "worker observability: http://%s/metrics\n", st.AdminAddr())

	srv := &shard.Server{
		Runner:      st,
		Fingerprint: st.Fingerprint(),
		Seed:        int64(cfg.Params.Seed),
		Registry:    st.Metrics,
		Tracer:      st.Tracer,
		Flight:      st.Flight,
		MetricsAddr: st.AdminAddr(),
	}
	if killVisits > 0 {
		srv.Kill = &shard.KillSwitch{After: killVisits, Exit: os.Exit}
	}
	if err := srv.Start(listen); err != nil {
		fmt.Fprintln(stderr, "pornstudy:", err)
		return 1
	}
	defer srv.Close()
	srv.Label = "worker@" + srv.Addr()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Registration retries generously: coordinator and workers start
	// concurrently, so the first attempts may land before its listener.
	ctrl := resilience.NewController(resilience.Policy{
		MaxAttempts: 10,
		Seed:        int64(cfg.Params.Seed),
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})
	if err := shard.Register(ctx, nil, ctrl, coordinator,
		shard.Registration{Name: srv.Label, Addr: srv.Addr(), MetricsAddr: srv.MetricsAddr}); err != nil {
		fmt.Fprintln(stderr, "pornstudy:", err)
		return 1
	}
	fmt.Fprintf(stderr, "worker %s registered with coordinator %s\n", srv.Label, coordinator)
	select {
	case <-srv.Done():
		return 0
	case <-ctx.Done():
		return 130
	}
}

// flushVolatile drains what an interrupted run can still save: the
// flight-event stream, the stage trace, and — when Run got far enough
// to assemble one — the provenance pair. The store checkpoint itself
// happens in the deferred st.Close.
func flushVolatile(st *core.Study, stderr io.Writer, flightFile *os.File, flightOut, traceOut, provDir string) {
	if flightFile != nil {
		seen, kept, sampledOut := st.Flight.Stats()
		flightFile.Close()
		fmt.Fprintf(stderr, "flight events written to %s (%d seen, %d kept, %d sampled out)\n",
			flightOut, seen, kept, sampledOut)
	}
	if traceOut != "" {
		if err := writeTrace(st, traceOut); err != nil {
			fmt.Fprintln(stderr, "pornstudy: trace:", err)
		}
	}
	if provDir != "" && st.Provenance != nil {
		if err := st.WriteProvenance(provDir); err != nil {
			fmt.Fprintln(stderr, "pornstudy: provenance:", err)
		}
	}
}

// writeTrace dumps the tracer's recent spans as a Chrome trace file.
func writeTrace(st *core.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, st.Tracer.Recent()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
