// Command pornstudy runs the complete measurement study against a freshly
// generated synthetic web ecosystem and prints every table and figure of
// the paper's evaluation.
//
// Usage:
//
//	pornstudy [-scale 0.05] [-seed 2019] [-workers 16] [-timeout 30s] [-v]
//	          [-serial] [-stage-workers 4]
//	          [-metrics-addr 127.0.0.1:9090]
//	          [-faults] [-retries 3] [-breaker-threshold 5] [-page-budget 2m]
//	          [-provenance DIR] [-trace-out FILE]
//	          [-flight-out FILE] [-flight-sample N]
//
// By default the pipeline runs as a dependency graph: independent crawls
// and analyses overlap, bounded by -stage-workers (0 = NumCPU). -serial
// restores the historical strictly sequential stage order; both produce
// identical results (pinned by the schedule-equivalence tests).
//
// -faults injects the default chaos profile into the generated
// ecosystem (transient 5xx bursts, drops, truncation, resets, redirect
// loops, latency, HTTP 451 geo-blocks). -retries enables bounded
// retries with exponential backoff; -breaker-threshold arms the
// per-host circuit breaker. The report then includes the robustness
// section with per-vantage loss and the failure taxonomy.
//
// With -metrics-addr set, an admin listener exposes live run telemetry:
// /metrics (Prometheus text format), /spans (recent pipeline-stage spans
// as JSON), /flight (recent per-visit wide events as NDJSON), /trace
// (Chrome trace-event export) and /debug/pprof/ while the study runs.
//
// -provenance DIR writes the run's manifest.json (deterministic: two runs
// of the same seeded config are byte-identical) and runinfo.json
// (wall-clock sidecar) into DIR; compare two such directories with the
// studydiff command. -trace-out dumps the stage spans as a Chrome
// trace-event file loadable in Perfetto; -flight-out streams every kept
// per-visit flight event as NDJSON; -flight-sample N keeps only 1 in N
// successful visits (failures are always kept).
//
// -scale 1.0 reproduces the paper's corpus sizes (6,843 porn sites and
// 9,688 regular sites) and takes several minutes; the default runs a
// proportionally scaled-down study in seconds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/obs"
	"pornweb/internal/report"
	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
)

func main() {
	scale := flag.Float64("scale", 0.05, "corpus scale (1.0 = paper size)")
	seed := flag.Uint64("seed", 2019, "generation seed")
	workers := flag.Int("workers", 16, "crawl parallelism")
	serial := flag.Bool("serial", false, "run pipeline stages strictly sequentially (reference schedule)")
	stageWorkers := flag.Int("stage-workers", 0, "concurrent pipeline stages for the DAG scheduler (0 = NumCPU)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-page timeout")
	verbose := flag.Bool("v", false, "progress logging")
	jsonOut := flag.String("json", "", "also write the raw results as JSON to this file")
	csvDir := flag.String("csv", "", "also write per-experiment CSV files into this directory")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /spans and /debug/pprof/ on this address (e.g. 127.0.0.1:9090)")
	faults := flag.Bool("faults", false, "inject the default chaos profile into the generated ecosystem")
	retries := flag.Int("retries", 0, "max attempts per request (0 or 1 = single-shot)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that open a host's circuit breaker (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 500*time.Millisecond, "how long an open breaker rejects before half-opening")
	pageBudget := flag.Duration("page-budget", 0, "total deadline per page visit across all retries (0 = 4x timeout when retries are on)")
	provDir := flag.String("provenance", "", "write manifest.json and runinfo.json into this directory (compare runs with studydiff)")
	traceOut := flag.String("trace-out", "", "write stage spans as a Chrome trace-event file (load in Perfetto or chrome://tracing)")
	flightOut := flag.String("flight-out", "", "stream kept per-visit flight events to this file as NDJSON")
	flightSample := flag.Int("flight-sample", 0, "keep 1 in N successful visit events (failures always kept; <=1 keeps all)")
	flag.Parse()

	params := webgen.Params{Seed: *seed, Scale: *scale}
	if *faults {
		params.Faults = webgen.DefaultFaultProfile()
		params.Faults.Geo451 = true
	}
	cfg := core.Config{
		Params:       params,
		Workers:      *workers,
		Serial:       *serial,
		StageWorkers: *stageWorkers,
		Timeout:      *timeout,
		MetricsAddr:  *metricsAddr,
		Resilience: resilience.Policy{
			MaxAttempts:      *retries,
			Seed:             int64(*seed),
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		},
		PageBudget:   *pageBudget,
		FlightSample: *flightSample,
	}
	var flightFile *os.File
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy:", err)
			os.Exit(1)
		}
		flightFile = f
		cfg.FlightSink = f
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	st, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pornstudy:", err)
		os.Exit(1)
	}
	defer st.Close()
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "observability: http://%s/metrics\n", st.AdminAddr())
	}

	start := time.Now()
	res, err := st.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pornstudy:", err)
		os.Exit(1)
	}
	fmt.Printf("Tales from the Porn — reproduction run (scale %.3g, seed %d, %s)\n",
		*scale, *seed, time.Since(start).Round(time.Millisecond))
	report.All(os.Stdout, res)
	report.Provenance(os.Stdout, st.Provenance)

	if *provDir != "" {
		if err := st.WriteProvenance(*provDir); err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy: provenance:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "provenance written to %s\n", *provDir)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy:", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, st.Tracer.Recent()); err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy: trace:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if flightFile != nil {
		seen, kept, sampledOut := st.Flight.Stats()
		flightFile.Close()
		fmt.Fprintf(os.Stderr, "flight events written to %s (%d seen, %d kept, %d sampled out)\n",
			*flightOut, seen, kept, sampledOut)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy: encode:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "raw results written to %s\n", *jsonOut)
	}
	if *csvDir != "" {
		if err := report.WriteCSVDir(*csvDir, res); err != nil {
			fmt.Fprintln(os.Stderr, "pornstudy: csv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV tables written to %s\n", *csvDir)
	}
}
