// Command crawlsite visits one site of a generated ecosystem with the
// instrumented browser and dumps everything the instrumentation saw:
// requests, cookies, script traces, fingerprinting verdicts, and detected
// compliance surfaces. A debugging lens over the measurement pipeline.
//
// Usage:
//
//	crawlsite [-scale 0.02] [-seed 2019] [-country ES] pornhub.com
//	crawlsite -faults -retries 3 -breaker-threshold 5 flakyhub.com
//	crawlsite -list            # print crawlable porn hosts and exit
//
// -faults regenerates the ecosystem with the default chaos profile, so
// a visit exercises the retry/breaker path; each request record then
// carries its attempt number, and failed visits report their taxonomy
// class.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pornweb/internal/browser"
	"pornweb/internal/consent"
	"pornweb/internal/crawler"
	"pornweb/internal/fingerprint"
	"pornweb/internal/obs"
	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

func main() {
	scale := flag.Float64("scale", 0.02, "corpus scale")
	seed := flag.Uint64("seed", 2019, "generation seed")
	country := flag.String("country", "ES", "vantage country (ES US UK RU IN SG)")
	list := flag.Bool("list", false, "list crawlable porn hosts and exit")
	logOut := flag.String("log", "", "write the raw request log as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address; also prints a metrics summary after the visit")
	faults := flag.Bool("faults", false, "inject the default chaos profile into the generated ecosystem")
	retries := flag.Int("retries", 0, "max attempts per request (0 or 1 = single-shot)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that open a host's circuit breaker (0 = disabled)")
	flag.Parse()

	params := webgen.Params{Seed: *seed, Scale: *scale}
	if *faults {
		params.Faults = webgen.DefaultFaultProfile()
		params.Faults.Geo451 = true
	}
	eco := webgen.Generate(params)
	if *list {
		for _, s := range eco.PornSites {
			if !s.Flaky && !s.Unresponsive {
				fmt.Println(s.Host)
			}
		}
		return
	}
	host := flag.Arg(0)
	if host == "" {
		fmt.Fprintln(os.Stderr, "usage: crawlsite [flags] <host> (try -list)")
		os.Exit(2)
	}

	var reg *obs.Registry
	var opts []webserver.Option
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts = append(opts, webserver.WithMetrics(reg))
	}
	srv, err := webserver.Start(eco, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsite:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if reg != nil {
		admin, err := obs.ServeAdmin(*metricsAddr, reg, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsite:", err)
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Printf("observability: http://%s/metrics\n", admin.Addr())
	}
	sess, err := crawler.NewSession(crawler.Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     *country,
		Timeout:     20 * time.Second,
		Metrics:     reg,
		Retry: resilience.Policy{
			MaxAttempts:      *retries,
			Seed:             int64(*seed),
			BreakerThreshold: *breakerThreshold,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsite:", err)
		os.Exit(1)
	}
	b := browser.New(sess)
	pv := b.Visit(context.Background(), host)
	if !pv.OK {
		fmt.Printf("visit FAILED: %s\n", pv.Err)
		if pv.FailClass != "" {
			fmt.Printf("failure class: %s\n", pv.FailClass)
		}
		os.Exit(1)
	}
	fmt.Printf("visited %s (https=%v)\n", pv.FinalURL, pv.HTTPS)

	fmt.Println("\nrequests:")
	for _, r := range sess.Log() {
		status := fmt.Sprint(r.Status)
		if r.Err != "" {
			status = "ERR"
		}
		fmt.Printf("  [%-8s] %-4s %s", r.Initiator, status, r.URL)
		if r.Attempt > 1 {
			fmt.Printf(" (attempt %d)", r.Attempt)
		}
		if r.RedirectTo != "" {
			fmt.Printf(" -> %s", r.RedirectTo)
		}
		fmt.Println()
		for _, c := range r.SetCookies {
			v := c.Value
			if len(v) > 48 {
				v = v[:48] + "..."
			}
			kind := "persistent"
			if c.Session {
				kind = "session"
			}
			fmt.Printf("      set-cookie %s=%s (%s)\n", c.Name, v, kind)
		}
	}

	fmt.Println("\nscript traces:")
	for _, st := range pv.Traces {
		name := st.URL
		if name == "" {
			name = "(inline)"
		}
		v := fingerprint.ClassifyTrace(st.Trace)
		fmt.Printf("  %s: %s", name, st.Trace.Summary())
		if v.Any() {
			fmt.Printf("  ** fingerprinting: canvas=%v font=%v webrtc=%v", v.CanvasFP, v.FontFP, v.WebRTC)
		}
		fmt.Println()
		for _, reason := range v.Reasons {
			fmt.Printf("      %s\n", reason)
		}
	}

	fmt.Println("\ncompliance surface:")
	if bt, ok := consent.DetectBanner(pv.DOM); ok {
		fmt.Printf("  cookie banner: %s\n", bt)
	} else {
		fmt.Println("  cookie banner: none")
	}
	if info, ok := consent.DetectAgeGate(pv.DOM); ok {
		fmt.Printf("  age gate: detected (bypassable=%v)\n", info.Bypassable)
	} else {
		fmt.Println("  age gate: none")
	}
	links := consent.FindPolicyLinks(pv.DOM)
	fmt.Printf("  privacy policy links: %v\n", links)
	m := consent.DetectMonetization(pv.DOM)
	fmt.Printf("  monetization: accounts=%v premium=%v paid=%v\n", m.HasAccounts, m.HasPremium, m.Paid)

	if reg != nil {
		fmt.Println("\nmetrics:")
		reg.WriteExposition(os.Stdout)
	}

	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsite:", err)
			os.Exit(1)
		}
		if err := crawler.ExportJSONL(f, sess.Log()); err != nil {
			fmt.Fprintln(os.Stderr, "crawlsite:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nrequest log written to %s\n", *logOut)
	}
}
