// Command studydiff compares the provenance manifests of two study runs
// and reports which figures changed and which pipeline stage diverged
// first. Point it at two manifest.json files, or at two directories
// written by pornstudy -provenance (it resolves manifest.json inside).
//
// Usage:
//
//	studydiff [-json] A B
//
// Exit status:
//
//	0  the runs are identical (same config fingerprint, corpora,
//	   stage digests and figure digests)
//	1  the runs differ; the report names every changed figure and the
//	   earliest diverging stage(s) in the pipeline DAG
//	2  usage or I/O error (missing file, unparsable manifest)
//
// The exit status makes studydiff usable as a CI determinism gate: run
// the seeded study twice and require exit 0 (see `make ci`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

import "pornweb/internal/provenance"

func main() {
	jsonOut := flag.Bool("json", false, "emit the diff as JSON instead of the human-readable report")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: studydiff [-json] <manifest-or-dir> <manifest-or-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	a, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "studydiff:", err)
		os.Exit(2)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "studydiff:", err)
		os.Exit(2)
	}

	// When both runs carry a shards.json sidecar, their per-shard digests
	// are compared too; a serial run has none, and comparing a sharded
	// run against a serial one rests on the main manifest alone (that is
	// the equivalence the sidecar exists to keep out of the manifest).
	sa, sb := loadShards(flag.Arg(0)), loadShards(flag.Arg(1))
	if sa != nil && sb != nil {
		if stages := provenance.DiffShardStages(sa, sb); len(stages) > 0 {
			fmt.Fprintf(os.Stderr, "studydiff: shard digests differ in stages %v\n", stages)
			os.Exit(1)
		}
	}

	d := provenance.Diff(a, b)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintln(os.Stderr, "studydiff:", err)
			os.Exit(2)
		}
	} else {
		d.Format(os.Stdout)
	}
	if !d.Identical {
		os.Exit(1)
	}
}

// load resolves a path to a manifest: a directory means the
// manifest.json written into it by pornstudy -provenance.
func load(path string) (*provenance.Manifest, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, "manifest.json")
	}
	return provenance.LoadManifest(path)
}

// loadShards resolves a path's shards.json sidecar, nil if absent (a
// serial run writes none) or when the argument was a manifest file
// rather than a run directory.
func loadShards(path string) *provenance.ShardManifest {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return nil
	}
	sm, err := provenance.LoadShardManifest(filepath.Join(path, "shards.json"))
	if err != nil {
		return nil
	}
	return sm
}
