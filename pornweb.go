// Package pornweb is a complete, self-contained reproduction of "Tales
// from the Porn: A Comprehensive Privacy Analysis of the Web Porn
// Ecosystem" (Vallina et al., IMC 2019).
//
// The library bundles everything the study needs into one module:
//
//   - a deterministic synthetic web-ecosystem generator calibrated to the
//     paper's measured distributions (sites, trackers, cookies, sync
//     partnerships, fingerprinting scripts, consent surfaces, geographic
//     behaviour);
//   - a loopback HTTP/HTTPS substrate serving that ecosystem with real
//     TLS, per-host certificates and virtual hosting;
//   - an instrumented crawler and page-loading engine (the OpenWPM
//     analog) plus an interactive crawler (the Selenium analog);
//   - the full analysis pipeline behind every table and figure of the
//     paper's evaluation: third-party censuses, organization attribution,
//     cookie identifier/sync analyses, fingerprinting heuristics, HTTPS
//     and malware measurements, geographic comparison, and the
//     GDPR/Digital-Economy-Act compliance audits.
//
// The quickest way in:
//
//	st, err := pornweb.NewStudy(pornweb.StudyConfig{
//	    Params: pornweb.Params{Seed: 2019, Scale: 0.05},
//	})
//	if err != nil { ... }
//	defer st.Close()
//	results, err := st.Run(context.Background())
//	pornweb.Report(os.Stdout, results)
//
// Scale 1.0 reproduces the paper's corpus sizes (6,843 pornographic and
// 9,688 regular websites); smaller scales shrink the population
// proportionally while preserving every distribution the analyses measure.
//
// Run executes the pipeline as a dependency graph on internal/sched:
// independent crawls and analyses overlap, bounded by
// StudyConfig.StageWorkers (default NumCPU). StudyConfig.Serial restores
// the historical strictly sequential stage order; both paths produce
// identical results — the schedule-equivalence tests in this package pin
// a byte-identical report across schedules.
//
// This package is a thin facade over the implementation packages; the
// exported aliases below are the stable public API.
package pornweb

import (
	"io"

	"pornweb/internal/core"
	"pornweb/internal/obs"
	"pornweb/internal/report"
	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// Params configures ecosystem generation: Seed drives all randomness,
// Scale scales the population (1.0 = the paper's corpus sizes).
type Params = webgen.Params

// Ecosystem is a fully generated synthetic web: ground-truth sites,
// services and companies, plus the virtual-server behaviour the crawlers
// observe.
type Ecosystem = webgen.Ecosystem

// Site is one generated website with its planted privacy behaviour.
type Site = webgen.Site

// Service is one generated third-party service.
type Service = webgen.Service

// Server hosts an ecosystem over loopback HTTP and HTTPS.
type Server = webserver.Server

// StudyConfig configures a full measurement run.
type StudyConfig = core.Config

// Study is a wired measurement environment: ecosystem, server, rank
// oracle and blocklists.
type Study = core.Study

// Results holds every reproduced table and figure.
type Results = core.Results

// Generate builds an ecosystem deterministically from the parameters.
func Generate(p Params) *Ecosystem { return webgen.Generate(p) }

// DefaultParams returns paper-scale generation parameters.
func DefaultParams() Params { return webgen.DefaultParams() }

// Serve starts the loopback server for an ecosystem. Callers must Close it.
func Serve(eco *Ecosystem) (*Server, error) { return webserver.Start(eco) }

// NewStudy generates an ecosystem and starts its server, ready to Run.
func NewStudy(cfg StudyConfig) (*Study, error) { return core.NewStudy(cfg) }

// Report renders every table and figure of a completed run as aligned
// plain text.
func Report(w io.Writer, r *Results) { report.All(w, r) }

// Observability. Every study collects metrics and stage spans; set
// StudyConfig.MetricsAddr to expose them over HTTP (/metrics in
// Prometheus text format, /spans as JSON, /debug/pprof/), or pass your
// own MetricsRegistry in StudyConfig.Metrics to scrape it in-process.

// MetricsRegistry is the thread-safe metrics registry (counters, gauges,
// latency histograms) the study's layers record into.
type MetricsRegistry = obs.Registry

// Tracer records recent pipeline-stage spans into a bounded ring buffer.
type Tracer = obs.Tracer

// Logger is the structured leveled logger carried by StudyConfig.Logger.
type Logger = obs.Logger

// LogLevel is a Logger severity.
type LogLevel = obs.Level

// Log severities accepted by NewLogger.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }

// Robustness. Params.Faults injects deterministic chaos into the
// generated ecosystem (transient 5xx bursts, dropped connections,
// truncated bodies, mid-stream resets, redirect loops, latency, HTTP
// 451 geo-blocks); StudyConfig.Resilience arms the crawl path against
// it (bounded retries with full-jitter backoff and a per-host circuit
// breaker). Results.Robustness reports what was lost and why.

// FaultProfile configures fault injection; the zero value disables it.
type FaultProfile = webgen.FaultProfile

// RetryPolicy configures crawl-path retries and the per-host circuit
// breaker; the zero value means single-shot requests, no breaker.
type RetryPolicy = resilience.Policy

// FailureClass is one bucket of the crawl failure taxonomy.
type FailureClass = resilience.Class

// RobustnessResult is the study's aggregated failure taxonomy:
// per-vantage site loss plus failed visits and requests by class.
type RobustnessResult = core.RobustnessResult

// DefaultFaultProfile returns a moderate chaos mix: roughly a fifth of
// hosts transiently faulty, all recoverable within the retry burst.
func DefaultFaultProfile() FaultProfile { return webgen.DefaultFaultProfile() }

// FailureClasses lists the failure taxonomy in report order.
func FailureClasses() []FailureClass { return resilience.Classes() }
