// Shard-equivalence harness: sharding a crawl across a worker fleet
// must change wall-clock only, never results. The serial path is the
// reference; a sharded run must reproduce the exact same Results
// struct, a byte-identical rendered report, and a byte-identical
// provenance manifest at every shard count — and a fleet that loses a
// worker mid-shard must still converge to the same bytes once the
// coordinator reassigns the lost shard to a survivor.
package pornweb_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/provenance"
	"pornweb/internal/report"
	"pornweb/internal/shard"
	"pornweb/internal/webgen"
)

// shardedRun is everything one pipeline run leaves behind that the
// equivalence claims quantify over.
type shardedRun struct {
	res      *core.Results
	report   []byte
	manifest []byte
	shards   *provenance.ShardManifest
	live     int
	retired  int
}

// runShardedPipeline executes the complete study under cfg and
// collects results, rendered report, manifest bytes (exactly what
// WriteProvenance would emit) and the shard sidecar.
func runShardedPipeline(t *testing.T, cfg core.Config) *shardedRun {
	t.Helper()
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatalf("NewStudy: %v", err)
	}
	defer st.Close()
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", cfg.Shards, err)
	}
	var buf bytes.Buffer
	report.All(&buf, res)
	raw, err := json.MarshalIndent(st.Provenance, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	r := &shardedRun{
		res:      res,
		report:   buf.Bytes(),
		manifest: append(raw, '\n'),
		shards:   st.ShardManifest(),
	}
	if c := st.Coordinator(); c != nil {
		r.live, r.retired = c.Workers()
	}
	return r
}

// TestShardEquivalence pins the sharded pipeline to the serial
// reference at collision-manifesting scale: identical Results,
// byte-identical report and byte-identical manifest for 2, 4 and 8
// shards dispatched across an in-process fleet.
func TestShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline four times; skipped in -short")
	}
	base := core.Config{
		Params:  webgen.Params{Seed: 2019, Scale: equivScale},
		Workers: 8,
		Timeout: 20 * time.Second,
	}
	ref := runShardedPipeline(t, base)
	if len(ref.report) == 0 {
		t.Fatal("serial reference rendered an empty report")
	}
	if ref.shards != nil {
		t.Fatal("serial reference produced a shard manifest")
	}
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := base
			cfg.Shards = shards
			got := runShardedPipeline(t, cfg)
			if !bytes.Equal(ref.manifest, got.manifest) {
				t.Errorf("manifest diverged from serial reference (serial %d bytes, sharded %d bytes)",
					len(ref.manifest), len(got.manifest))
				logFirstDiff(t, ref.manifest, got.manifest)
			}
			if !bytes.Equal(ref.report, got.report) {
				t.Errorf("rendered report diverged from serial reference")
				logFirstDiff(t, ref.report, got.report)
			}
			if !reflect.DeepEqual(ref.res, got.res) {
				t.Error("Results struct diverged from serial reference")
			}
			if got.shards == nil || len(got.shards.Stages) == 0 {
				t.Fatal("sharded run recorded no shard manifest")
			}
			for name, s := range got.shards.Stages {
				if s.Shards != shards {
					t.Errorf("stage %s recorded %d shards, want %d", name, s.Shards, shards)
				}
			}
		})
	}
}

// TestWorkerFailureReassignment kills one in-process worker at a
// seeded visit mid-shard: the coordinator must retire it, reassign the
// lost shard to a survivor, and converge to exactly the bytes an
// uninterrupted fleet produces — manifest, shard sidecar and Results.
func TestWorkerFailureReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice; skipped in -short")
	}
	base := core.Config{
		Params:       webgen.Params{Seed: 11, Scale: 0.004},
		Countries:    []string{"ES", "US", "RU"},
		Workers:      4,
		Timeout:      5 * time.Second,
		Shards:       3,
		ShardWorkers: 3,
	}
	ref := runShardedPipeline(t, base)
	if ref.retired != 0 || ref.live != 3 {
		t.Fatalf("uninterrupted fleet ended with %d live / %d retired workers, want 3/0",
			ref.live, ref.retired)
	}

	cfg := base
	// Exit is left nil: in-process the "death" is the worker failing
	// every subsequent assignment, which is what a vanished process
	// looks like to the coordinator.
	cfg.ShardKill = &shard.KillSwitch{After: 5}
	got := runShardedPipeline(t, cfg)
	if got.retired != 1 || got.live != 2 {
		t.Fatalf("killed fleet ended with %d live / %d retired workers, want 2/1",
			got.live, got.retired)
	}
	if !bytes.Equal(ref.manifest, got.manifest) {
		t.Error("manifest after worker death diverged from uninterrupted fleet")
		logFirstDiff(t, ref.manifest, got.manifest)
	}
	if !reflect.DeepEqual(ref.res, got.res) {
		t.Error("Results after worker death diverged from uninterrupted fleet")
	}
	if got.shards == nil || ref.shards == nil {
		t.Fatal("sharded runs recorded no shard manifest")
	}
	if stages := provenance.DiffShardStages(ref.shards, got.shards); stages != nil {
		t.Errorf("shard sidecar diverged after worker death in stages %v", stages)
	}
}
