// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// measures the analysis that produces the experiment and prints the same
// rows the paper reports exactly once per run, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation alongside the timings. The crawls that
// feed the analyses run once in a shared fixture.
package pornweb_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"pornweb/internal/browser"
	"pornweb/internal/core"
	"pornweb/internal/report"
	"pornweb/internal/webgen"
)

// benchScale controls the population size of the benchmark ecosystem.
const benchScale = 0.03

type fixture struct {
	st        *core.Study
	corpus    *core.Corpus
	pornES    *core.CrawlResult
	regES     *core.CrawlResult
	regularTP map[string]bool
	visits    map[string]*browser.InteractiveVisit
	geoCrawls map[string]*core.CrawlResult
}

func setupFixture(b *testing.B) *fixture {
	b.Helper()
	fixtureOnce.Do(func() {
		st, err := core.NewStudy(core.Config{
			Params:  webgen.Params{Seed: 2019, Scale: benchScale},
			Workers: 16,
			Timeout: 20 * time.Second,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		ctx := context.Background()
		corpus, err := st.CompileCorpus(ctx)
		if err != nil {
			fixtureErr = err
			return
		}
		pornES, err := st.Crawl(ctx, corpus.Porn, "ES")
		if err != nil {
			fixtureErr = err
			return
		}
		regES, err := st.Crawl(ctx, corpus.Reference, "ES")
		if err != nil {
			fixtureErr = err
			return
		}
		regularTP := map[string]bool{}
		for _, h := range regES.AllThirdPartyHosts() {
			regularTP[h] = true
		}
		visits, err := st.InteractiveCrawl(ctx, corpus.Porn, "ES")
		if err != nil {
			fixtureErr = err
			return
		}
		geo := map[string]*core.CrawlResult{"ES": pornES}
		for _, c := range []string{"US", "UK", "RU", "IN", "SG"} {
			cr, err := st.Crawl(ctx, corpus.Porn, c)
			if err != nil {
				fixtureErr = err
				return
			}
			geo[c] = cr
		}
		sharedFixture = &fixture{
			st: st, corpus: corpus, pornES: pornES, regES: regES,
			regularTP: regularTP, visits: visits, geoCrawls: geo,
		}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return sharedFixture
}

var (
	fixtureOnce   sync.Once
	sharedFixture *fixture
	fixtureErr    error
	printOnce     = map[string]*sync.Once{}
	printMu       sync.Mutex
)

// printRows emits an experiment's rows exactly once per test-binary run.
func printRows(name string, fn func()) {
	printMu.Lock()
	once, ok := printOnce[name]
	if !ok {
		once = &sync.Once{}
		printOnce[name] = once
	}
	printMu.Unlock()
	once.Do(fn)
}

func BenchmarkCorpusCompilation(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus, err := f.st.CompileCorpus(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printRows("corpus", func() { report.Corpus(os.Stdout, corpus) })
		}
	}
}

func BenchmarkFigure1RankStability(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := f.st.RankStability(f.corpus.Porn)
		if i == 0 {
			printRows("figure1", func() { report.Figure1(os.Stdout, fig, 15) })
		}
	}
}

func BenchmarkTable1OwnerClusters(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owners := f.st.AnalyzeOwners(f.pornES, f.visits, 15)
		if i == 0 {
			printRows("table1", func() { report.Table1(os.Stdout, owners) })
		}
	}
}

func BenchmarkTable2ThirdParties(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := f.st.AnalyzeThirdParties(f.pornES, f.regES)
		if i == 0 {
			printRows("table2", func() { report.Table2(os.Stdout, t2) })
		}
	}
}

func BenchmarkTable3PopularityIntervals(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := f.st.AnalyzePopularityIntervals(f.pornES)
		shared, total := f.st.SharedAcrossAllIntervals(f.pornES)
		if i == 0 {
			printRows("table3", func() { report.Table3(os.Stdout, rows, shared, total) })
		}
	}
}

func BenchmarkFigure3Organizations(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, cov := f.st.AnalyzeOrganizations(f.pornES, f.regES, 19)
		if i == 0 {
			printRows("figure3", func() {
				ar := float64(cov.Attributed) / float64(cov.Hosts)
				dr := float64(cov.DisconnectOnly) / float64(cov.Hosts)
				report.Figure3(os.Stdout, rows, ar, dr, len(cov.Companies))
			})
		}
	}
}

func BenchmarkCookieCensus(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		census, _ := f.st.AnalyzeCookies(f.pornES, f.regularTP)
		if i == 0 {
			printRows("census", func() { report.CookieCensus(os.Stdout, census) })
		}
	}
}

func BenchmarkTable4CookieDomains(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rows := f.st.AnalyzeCookies(f.pornES, f.regularTP)
		if i == 0 {
			printRows("table4", func() { report.Table4(os.Stdout, rows, 5) })
		}
	}
}

func BenchmarkFigure4CookieSync(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sync := f.st.AnalyzeCookieSync(f.pornES, f.st.SyncEdgeThreshold())
		if i == 0 {
			printRows("figure4", func() { report.Figure4(os.Stdout, sync, 15) })
		}
	}
}

func BenchmarkTable5Fingerprinting(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := f.st.AnalyzeFingerprinting(f.pornES, f.regularTP)
		if i == 0 {
			printRows("table5", func() { report.Table5(os.Stdout, fp, 10) })
		}
	}
}

func BenchmarkTable6HTTPS(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := f.st.AnalyzeHTTPS(f.pornES)
		if i == 0 {
			printRows("table6", func() { report.Table6(os.Stdout, h) })
		}
	}
}

func BenchmarkMalwarePresence(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.st.AnalyzeMalware(f.pornES)
		if i == 0 {
			printRows("malware", func() { report.Malware(os.Stdout, m) })
		}
	}
}

func BenchmarkTable7Geographic(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Crawls are cached in the fixture; this measures the comparison
		// analysis itself.
		crawls := map[string]*core.CrawlResult{}
		for k, v := range f.geoCrawls {
			crawls[k] = v
		}
		geo, err := f.st.AnalyzeGeo(context.Background(), f.corpus.Porn, f.regularTP, crawls)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printRows("table7", func() { report.Table7(os.Stdout, geo) })
		}
	}
}

func BenchmarkTable8CookieBanners(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es := f.st.AnalyzeBanners(f.geoCrawls["ES"])
		us := f.st.AnalyzeBanners(f.geoCrawls["US"])
		if i == 0 {
			printRows("table8", func() { report.Table8(os.Stdout, es, us) })
		}
	}
}

func BenchmarkAgeVerification(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		age, err := f.st.AnalyzeAgeVerification(context.Background(), f.corpus.Porn)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printRows("age", func() { report.Age(os.Stdout, age) })
		}
	}
}

func BenchmarkPrivacyPolicies(b *testing.B) {
	f := setupFixture(b)
	top := f.st.TopTrackingSites(f.pornES, 25)
	perSiteTP := f.pornES.ThirdPartyHostsBySite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.st.AnalyzePolicies(f.visits, top, perSiteTP)
		if i == 0 {
			printRows("policies", func() { report.Policies(os.Stdout, p) })
		}
	}
}

func BenchmarkMonetization(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.st.AnalyzeMonetization(f.pornES)
		if i == 0 {
			printRows("monetization", func() { report.Monetization(os.Stdout, m) })
		}
	}
}

// BenchmarkBlockingAblation measures the anti-tracking replay (the
// Section 10 extension): how much tracking an EasyList/EasyPrivacy blocker
// removes from the porn crawl.
func BenchmarkBlockingAblation(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := f.st.AnalyzeBlocking(f.pornES)
		if i == 0 {
			printRows("blocking", func() { report.Blocking(os.Stdout, blk) })
		}
	}
}

// BenchmarkRTAAdoption measures the RTA-label scan.
func BenchmarkRTAAdoption(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := f.st.AnalyzeRTA(f.pornES)
		if i == 0 {
			printRows("rta", func() { report.RTA(os.Stdout, r) })
		}
	}
}

// BenchmarkInclusionChains measures the referrer-chain reconstruction.
func BenchmarkInclusionChains(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := f.st.AnalyzeInclusionChains(f.pornES)
		if i == 0 {
			printRows("chains", func() { report.Chains(os.Stdout, c) })
		}
	}
}

// BenchmarkLevenshteinAblation sweeps the party-grouping threshold (the
// paper fixed 0.7 after manual verification) and scores each setting
// against planted ground truth.
func BenchmarkLevenshteinAblation(b *testing.B) {
	f := setupFixture(b)
	thresholds := []float64{0.3, 0.5, 0.6, 0.7, 0.8, 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := f.st.AblateLevenshtein(f.pornES, thresholds)
		if i == 0 {
			printRows("lev-ablation", func() {
				os.Stdout.WriteString("\nLevenshtein-threshold ablation (party labeling vs ground truth)\n")
				os.Stdout.WriteString("----------------------------------------------------------------\n")
				for _, r := range rows {
					fmt.Fprintf(os.Stdout, "threshold %.1f: false-first %5d  false-third %5d  of %d pairs\n",
						r.Threshold, r.FalseFirst, r.FalseThird, r.Pairs)
				}
			})
		}
	}
}

// BenchmarkSyncDetectionAblation compares sync matching with and without
// path-segment identifiers.
func BenchmarkSyncDetectionAblation(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab := f.st.AblateSyncDetection(f.pornES)
		if i == 0 {
			printRows("sync-ablation", func() {
				fmt.Fprintf(os.Stdout, "\nSync-detection ablation: %d events with paths, %d query-only (%d carried in paths)\n",
					ab.WithPaths, ab.QueryOnly, ab.PathCarried)
			})
		}
	}
}

// BenchmarkMainCrawl measures the instrumented crawl itself: full porn
// corpus page loads per iteration (pages/op reported via sites metric).
func BenchmarkMainCrawl(b *testing.B) {
	f := setupFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := f.st.Crawl(context.Background(), f.corpus.Porn, "ES")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cr.Crawled)), "sites/op")
		b.ReportMetric(float64(len(cr.Log)), "requests/op")
	}
}
